//! Warm-start repair for the distributed coloring (cmg-serve's kernel).
//!
//! A distance-1 coloring is invalidated only where a mutation creates a
//! *monochrome edge*: an edge-creating op ([`Mutation::Insert`], or
//! [`Mutation::Reweight`] of an absent edge, which inserts it) whose
//! endpoints currently share a color. Deletions never invalidate —
//! removing an edge only relaxes constraints — and reweighting an
//! *existing* edge is a no-op because weights play no role in coloring
//! (its endpoints are already bichromatic, so the monochrome check
//! filters it out). The dirty set is therefore exactly one endpoint per
//! now-monochrome inserted edge; we uncolor the endpoint that loses the
//! pre-assigned random tie-break `r(v)` — the same rule the framework's
//! conflict detection applies (§4, Algorithm 4.1) — so repair *is* one
//! more round of the paper's own iterative recoloring, seeded externally.
//!
//! Repair then reruns the ordinary engine over warm programs
//! ([`DistColoring::warm`] via the [`WarmStart`](cmg_runtime::WarmStart)
//! impl): clean vertices keep their colors verbatim; dirty vertices are
//! speculatively recolored and conflict-checked through the usual
//! phase protocol. The result is a proper coloring of the new graph, but
//! the *palette size* may differ from a cold run — first-fit over a
//! mostly-fixed coloring has less freedom than first-fit from scratch.
//! That is the documented serve-layer relaxation (DESIGN.md §13): the
//! oracle is propriety plus stability of clean colors, not bit-identity
//! with a cold run.

use crate::coloring::UNCOLORED;
use crate::dist::DistColoring;
use cmg_graph::util::vertex_priority;
use cmg_graph::{Mutation, MutationBatch, NeighborView, VertexId};

/// The globally consistent retained state a warm coloring run seeds
/// from: produced by [`invalidate_colors`], consumed by every rank's
/// [`WarmStart::reseed`](cmg_runtime::WarmStart::reseed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColorRetained {
    /// Post-invalidation global color vector; [`UNCOLORED`] marks the
    /// dirty vertices the warm run re-decides.
    pub color: Vec<u32>,
}

impl ColorRetained {
    /// Number of vertices the warm run re-colors (the coloring half of
    /// the serve dirtiness metric).
    pub fn dirty_count(&self) -> usize {
        self.color.iter().filter(|&&c| c == UNCOLORED).count()
    }

    /// `true` iff `v` must be re-colored.
    #[inline]
    pub fn is_dirty(&self, v: VertexId) -> bool {
        self.color[v as usize] == UNCOLORED
    }
}

/// Computes the coloring invalidation set of `batch` against the *new*
/// graph `g_new` (mutations already applied) and the old color vector.
/// `seed` must be the [`ColoringConfig::seed`](crate::ColoringConfig)
/// the warm run will use, so the uncolored endpoint is the one the
/// framework's own conflict detection would pick.
pub fn invalidate_colors(
    g_new: &(impl NeighborView + ?Sized),
    old_color: &[u32],
    batch: &MutationBatch,
    seed: u64,
) -> ColorRetained {
    debug_assert_eq!(g_new.num_vertices(), old_color.len());
    let mut color = old_color.to_vec();
    for op in &batch.ops {
        // Deletes are coloring no-ops; see module docs. Reweights are
        // treated as inserts because reweighting an absent edge
        // *inserts* it (`MutableGraph`'s documented degenerate case) —
        // for an edge that already existed the endpoints are already
        // bichromatic and the monochrome check below never fires.
        if let Mutation::Insert { u, v, .. } | Mutation::Reweight { u, v, .. } = *op {
            if !g_new.has_edge(u, v) {
                continue; // superseded by a later delete in the batch
            }
            let (cu, cv) = (color[u as usize], color[v as usize]);
            if cu != UNCOLORED && cu == cv {
                // Monochrome insert: re-color the endpoint with the
                // smaller (r(v), id) — the conflict-detection loser.
                let loser = if (vertex_priority(u as u64, seed), u)
                    < (vertex_priority(v as u64, seed), v)
                {
                    u
                } else {
                    v
                };
                color[loser as usize] = UNCOLORED;
            }
        }
    }
    ColorRetained { color }
}

/// Finishes a coloring repair **sequentially**: dirty vertices are
/// recolored greedily in descending `(r(v), id)` priority, each taking
/// the smallest color absent from its neighborhood — O(dirty · degree).
///
/// The serving layer's hot path. Recoloring order matches the priority
/// the distributed phases use, and clean vertices are never touched, so
/// the result is proper by construction and clean colors are stable —
/// the same contract as the engine warm run. Palette identity with the
/// distributed run is *not* promised (the documented DESIGN.md §13
/// relaxation; first-fit order differs between one sequential scan and
/// the engine's speculative rounds).
///
/// Returns the completed global color vector.
pub fn repair_frontier_colors(
    g: &(impl NeighborView + ?Sized),
    retained: &ColorRetained,
    seed: u64,
) -> Vec<u32> {
    let mut color = retained.color.clone();
    let mut dirty: Vec<VertexId> = (0..color.len() as VertexId)
        .filter(|&v| retained.is_dirty(v))
        .collect();
    dirty.sort_unstable_by_key(|&v| std::cmp::Reverse((vertex_priority(v as u64, seed), v)));
    let mut taken: Vec<u32> = Vec::new();
    for v in dirty {
        taken.clear();
        g.for_each_neighbor(v, &mut |u, _| {
            let c = color[u as usize];
            if c != UNCOLORED {
                taken.push(c);
            }
        });
        taken.sort_unstable();
        let mut pick = 0u32;
        for &c in &taken {
            if c == pick {
                pick += 1;
            } else if c > pick {
                break;
            }
        }
        color[v as usize] = pick;
    }
    color
}

impl cmg_runtime::WarmStart for DistColoring {
    type Retained = ColorRetained;

    /// Reseeds one rank from the retained global view: clean colors are
    /// kept (owned *and* ghost), dirty vertices form the first phase's
    /// work list, and the ordinary speculate/detect/allreduce protocol
    /// repairs the frontier.
    fn reseed(meta: <Self as cmg_runtime::RankProgram>::Meta, retained: &ColorRetained) -> Self {
        let (dg, cfg) = meta;
        DistColoring::warm(dg, cfg, &retained.color, |v| retained.is_dirty(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{assemble_coloring, ColorChoice, ColoringConfig};
    use crate::Coloring;
    use cmg_graph::generators::{erdos_renyi, grid2d};
    use cmg_graph::{CsrGraph, MutableGraph};
    use cmg_partition::simple::hash_partition;
    use cmg_partition::DistGraph;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine, WarmStart};

    fn warm_run(
        g: &CsrGraph,
        parts: u32,
        cfg: ColoringConfig,
        retained: &ColorRetained,
    ) -> (Coloring, u64) {
        let p = hash_partition(g.num_vertices(), parts, 7);
        let dgs = DistGraph::build_all(g, &p);
        let programs: Vec<DistColoring> = dgs
            .into_iter()
            .map(|dg| DistColoring::reseed((dg, cfg), retained))
            .collect();
        let ecfg = EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        };
        let result = SimEngine::new(programs, ecfg).run();
        assert!(!result.hit_round_cap, "warm coloring did not quiesce");
        for prog in &result.programs {
            assert!(prog.is_finished(), "warm run abandoned a rank mid-phase");
        }
        (
            assemble_coloring(&result.programs, g.num_vertices()),
            result.stats.rounds,
        )
    }

    fn cold_colors(g: &CsrGraph, parts: u32, cfg: ColoringConfig) -> Vec<u32> {
        let p = hash_partition(g.num_vertices(), parts, 7);
        let programs: Vec<DistColoring> = DistGraph::build_all(g, &p)
            .into_iter()
            .map(|dg| DistColoring::new(dg, cfg))
            .collect();
        let ecfg = EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        };
        let result = SimEngine::new(programs, ecfg).run();
        assemble_coloring(&result.programs, g.num_vertices())
            .colors()
            .to_vec()
    }

    /// Random mutation streams: after every batch the repaired coloring
    /// must be proper on the new graph, and every clean (non-dirty)
    /// vertex must keep its retained color verbatim.
    #[test]
    fn repair_is_proper_and_stable_across_mutation_stream() {
        for seed in 0..4u64 {
            let g0 = erdos_renyi(80, 240, seed);
            let cfg = ColoringConfig {
                superstep_size: 16,
                ..Default::default()
            };
            let mut mg = MutableGraph::from_csr(&g0);
            let mut colors = cold_colors(&g0, 3, cfg);
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for step in 0..12 {
                let mut batch = MutationBatch::new();
                for _ in 0..4 {
                    let u = (rng() % 80) as VertexId;
                    let v = (rng() % 80) as VertexId;
                    if u == v {
                        continue;
                    }
                    if rng() % 3 == 0 {
                        batch.delete(u, v);
                    } else {
                        batch.insert(u, v, 1.0);
                    }
                }
                mg.apply(&batch).unwrap();
                let g = mg.rebuild();
                let retained = invalidate_colors(&g, &colors, &batch, cfg.seed);
                let (c, _) = warm_run(&g, 3, cfg, &retained);
                c.validate(&g)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                for v in 0..g.num_vertices() as VertexId {
                    if !retained.is_dirty(v) {
                        assert_eq!(
                            c.color(v),
                            retained.color[v as usize],
                            "seed {seed} step {step}: clean vertex {v} was recolored"
                        );
                    }
                }
                colors = c.colors().to_vec();
            }
        }
    }

    /// The sequential frontier finisher, run against the *mutable*
    /// graph directly, yields a proper coloring with clean colors
    /// stable, across random mutation streams.
    #[test]
    fn sequential_frontier_recolor_is_proper_and_stable() {
        for seed in 0..4u64 {
            let g0 = erdos_renyi(80, 240, seed + 20);
            let cfg = ColoringConfig::default();
            let mut mg = MutableGraph::from_csr(&g0);
            let mut colors = cold_colors(&g0, 3, cfg);
            let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(3);
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for step in 0..12 {
                let mut batch = MutationBatch::new();
                for _ in 0..4 {
                    let u = (rng() % 80) as VertexId;
                    let v = (rng() % 80) as VertexId;
                    if u == v {
                        continue;
                    }
                    if rng() % 3 == 0 {
                        batch.delete(u, v);
                    } else {
                        batch.insert(u, v, 1.0);
                    }
                }
                mg.apply(&batch).unwrap();
                let retained = invalidate_colors(&mg, &colors, &batch, cfg.seed);
                let next = repair_frontier_colors(&mg, &retained, cfg.seed);
                for v in 0..next.len() as VertexId {
                    if !retained.is_dirty(v) {
                        assert_eq!(
                            next[v as usize], retained.color[v as usize],
                            "seed {seed} step {step}: clean vertex {v} was recolored"
                        );
                    }
                }
                Coloring::from_colors(next.clone())
                    .validate(&mg.rebuild())
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                colors = next;
            }
        }
    }

    /// Dirty sets are minimal: one endpoint per monochrome insert, zero
    /// for deletes, reweightings, and already-bichromatic inserts.
    #[test]
    fn dirty_set_is_one_endpoint_per_monochrome_insert() {
        let g0 = grid2d(10, 10);
        let cfg = ColoringConfig::default();
        let colors = cold_colors(&g0, 2, cfg);
        let mut mg = MutableGraph::from_csr(&g0);

        // Find a monochrome non-edge and a bichromatic non-edge.
        let mono = (0..100u32)
            .flat_map(|u| (0..100u32).map(move |v| (u, v)))
            .find(|&(u, v)| u < v && !g0.has_edge(u, v) && colors[u as usize] == colors[v as usize])
            .unwrap();
        let bi = (0..100u32)
            .flat_map(|u| (0..100u32).map(move |v| (u, v)))
            .find(|&(u, v)| u < v && !g0.has_edge(u, v) && colors[u as usize] != colors[v as usize])
            .unwrap();

        let mut batch = MutationBatch::new();
        batch
            .insert(mono.0, mono.1, 1.0)
            .insert(bi.0, bi.1, 1.0)
            .delete(0, 1)
            .reweight(2, 3, 9.0);
        mg.apply(&batch).unwrap();
        let g = mg.rebuild();
        let retained = invalidate_colors(&g, &colors, &batch, cfg.seed);
        assert_eq!(retained.dirty_count(), 1, "exactly the monochrome loser");
        assert!(retained.is_dirty(mono.0) || retained.is_dirty(mono.1));
        let (c, _) = warm_run(&g, 4, cfg, &retained);
        c.validate(&g).unwrap();
    }

    /// An empty batch dirties nothing and the warm run terminates in one
    /// conflict-free phase with the retained coloring intact.
    #[test]
    fn noop_batch_retains_every_color() {
        let g = grid2d(8, 8);
        let cfg = ColoringConfig::default();
        let colors = cold_colors(&g, 3, cfg);
        let retained = invalidate_colors(&g, &colors, &MutationBatch::new(), cfg.seed);
        assert_eq!(retained.dirty_count(), 0);
        let (c, _) = warm_run(&g, 3, cfg, &retained);
        assert_eq!(c.colors(), &colors[..]);
    }

    /// Warm start composes with the LeastUsed strategy: the usage table
    /// is rebuilt from retained colors, so repairs stay balanced and
    /// proper.
    #[test]
    fn least_used_warm_start_rebuilds_usage() {
        let g0 = erdos_renyi(60, 200, 11);
        let cfg = ColoringConfig {
            color_choice: ColorChoice::LeastUsed,
            superstep_size: 8,
            ..Default::default()
        };
        let colors = cold_colors(&g0, 3, cfg);
        let mut mg = MutableGraph::from_csr(&g0);
        let mut batch = MutationBatch::new();
        for v in 1..6u32 {
            batch.insert(0, v, 1.0);
        }
        mg.apply(&batch).unwrap();
        let g = mg.rebuild();
        let retained = invalidate_colors(&g, &colors, &batch, cfg.seed);
        let (c, _) = warm_run(&g, 3, cfg, &retained);
        c.validate(&g).unwrap();
    }
}
