//! Distance-2 coloring: no two vertices within distance two share a color.
//!
//! This is the coloring variation behind the paper's flagship application
//! (§1: "efficient computation of sparse Jacobian and Hessian matrices in
//! numerical optimization" — a distance-2 coloring of the adjacency graph
//! yields a valid column compression). Sequential greedy here; the
//! distributed speculative version lives in [`crate::dist2`].

use crate::coloring::{Coloring, UNCOLORED};
use crate::seq::Ordering;
use cmg_graph::{CsrGraph, VertexId};

/// Greedy first-fit distance-2 coloring of `g` under `order`.
///
/// Uses at most `Δ² + 1` colors; `O(Σ deg²)` time.
pub fn greedy_d2(g: &CsrGraph, order: Ordering) -> Coloring {
    let seq = match order {
        Ordering::IncidenceDegree | Ordering::Saturation => {
            // The dynamic orderings are distance-1 notions; fall back to
            // largest-first, which behaves comparably for d2.
            crate::seq::vertex_order(g, Ordering::LargestFirst)
        }
        _ => crate::seq::vertex_order(g, order),
    };
    greedy_d2_in_order(g, &seq)
}

/// Greedy distance-2 coloring following an explicit vertex sequence.
pub fn greedy_d2_in_order(g: &CsrGraph, seq: &[VertexId]) -> Coloring {
    let n = g.num_vertices();
    let mut coloring = Coloring::uncolored(n);
    let mut forbidden: Vec<u64> = vec![u64::MAX; n + 1];
    let mut stamp = 0u64;
    for &v in seq {
        stamp += 1;
        for &u in g.neighbors(v) {
            let cu = coloring.color(u);
            if cu != UNCOLORED {
                forbidden[cu as usize] = stamp;
            }
            for &w in g.neighbors(u) {
                let cw = coloring.color(w);
                if w != v && cw != UNCOLORED {
                    forbidden[cw as usize] = stamp;
                }
            }
        }
        let mut c = 0u32;
        while (c as usize) <= n && forbidden[c as usize] == stamp {
            c += 1;
        }
        coloring.set(v, c);
    }
    coloring
}

/// Validates a complete distance-2 coloring: every vertex differs from all
/// neighbors, and all neighbors of any vertex are pairwise distinct (the
/// two conditions together cover all pairs at distance ≤ 2).
pub fn validate_d2(coloring: &Coloring, g: &CsrGraph) -> Result<(), String> {
    if coloring.num_vertices() != g.num_vertices() {
        return Err("coloring size does not match graph".into());
    }
    let mut seen: Vec<u64> = vec![u64::MAX; coloring.num_colors().max(1)];
    let mut stamp = 0u64;
    for v in 0..g.num_vertices() as VertexId {
        let cv = coloring.color(v);
        if cv == UNCOLORED {
            return Err(format!("vertex {v} uncolored"));
        }
        // Distance-1 condition + pairwise-distinct neighborhood.
        stamp += 1;
        for &u in g.neighbors(v) {
            let cu = coloring.color(u);
            if cu == UNCOLORED {
                return Err(format!("vertex {u} uncolored"));
            }
            if cu == cv {
                return Err(format!("d1 conflict: {v} and {u} share color {cv}"));
            }
            if seen[cu as usize] == stamp {
                return Err(format!(
                    "d2 conflict: two neighbors of {v} share color {cu}"
                ));
            }
            seen[cu as usize] = stamp;
        }
    }
    Ok(())
}

/// Counts distance-≤2 conflict pairs (0 for a valid d2 coloring). Counts
/// a distance-2 pair once per common neighbor (a cheap upper bound used
/// in tests and progress reporting).
pub fn count_d2_conflicts(coloring: &Coloring, g: &CsrGraph) -> usize {
    let mut conflicts = 0;
    for v in 0..g.num_vertices() as VertexId {
        let cv = coloring.color(v);
        let nbrs = g.neighbors(v);
        for (i, &u) in nbrs.iter().enumerate() {
            if u > v && coloring.color(u) == cv && cv != UNCOLORED {
                conflicts += 1;
            }
            for &w in &nbrs[i + 1..] {
                if coloring.color(u) != UNCOLORED && coloring.color(u) == coloring.color(w) {
                    conflicts += 1;
                }
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::{complete, cycle, erdos_renyi, grid2d, star};

    #[test]
    fn grid_d2_uses_few_colors() {
        let g = grid2d(10, 10);
        let c = greedy_d2(&g, Ordering::Natural);
        validate_d2(&c, &g).unwrap();
        // 5-point grid: distance-2 neighborhood has ≤ 12 vertices; a
        // periodic 5-coloring exists. Greedy stays well under Δ²+1 = 17.
        assert!(c.num_colors() <= 9, "{} colors", c.num_colors());
        assert!(c.num_colors() >= 5);
    }

    #[test]
    fn star_needs_n_colors_at_distance_2() {
        // All leaves are pairwise at distance 2 through the hub.
        let g = star(8);
        let c = greedy_d2(&g, Ordering::Natural);
        validate_d2(&c, &g).unwrap();
        assert_eq!(c.num_colors(), 8);
    }

    #[test]
    fn complete_graph_d2_equals_d1() {
        let g = complete(6);
        let c = greedy_d2(&g, Ordering::SmallestLast);
        validate_d2(&c, &g).unwrap();
        assert_eq!(c.num_colors(), 6);
    }

    #[test]
    fn cycle_d2() {
        let g = cycle(9);
        let c = greedy_d2(&g, Ordering::Natural);
        validate_d2(&c, &g).unwrap();
        assert!(c.num_colors() >= 3);
        assert!(c.num_colors() <= 5);
    }

    #[test]
    fn every_ordering_is_valid_and_bounded() {
        let g = erdos_renyi(60, 180, 3);
        let bound = g.max_degree() * g.max_degree() + 1;
        for order in [
            Ordering::Natural,
            Ordering::Random(5),
            Ordering::LargestFirst,
            Ordering::SmallestLast,
            Ordering::IncidenceDegree, // falls back to largest-first
        ] {
            let c = greedy_d2(&g, order);
            validate_d2(&c, &g).unwrap();
            assert!(c.num_colors() <= bound);
        }
    }

    #[test]
    fn validator_catches_d2_conflicts() {
        // Path 0-1-2: distance-2 pair (0, 2).
        let g = cmg_graph::generators::path(3);
        let bad = Coloring::from_colors(vec![0, 1, 0]);
        assert!(validate_d2(&bad, &g).is_err());
        assert!(count_d2_conflicts(&bad, &g) > 0);
        let good = Coloring::from_colors(vec![0, 1, 2]);
        validate_d2(&good, &g).unwrap();
        assert_eq!(count_d2_conflicts(&good, &g), 0);
    }

    #[test]
    fn d2_coloring_is_also_a_d1_coloring() {
        let g = erdos_renyi(40, 120, 9);
        let c = greedy_d2(&g, Ordering::Natural);
        c.validate(&g).unwrap(); // d1 validity is implied
    }
}
