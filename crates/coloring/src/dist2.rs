//! Distributed speculative **distance-2** coloring.
//!
//! Extends the paper's speculative/iterative framework (§4) to the
//! distance-2 problem that motivates it (Jacobian/Hessian compression,
//! §1). The structure per phase mirrors Algorithm 4.1 — speculative
//! coloring in supersteps, a `DONE` wave, conflict detection, an allreduce
//! on the conflict count — with two distance-2-specific twists:
//!
//! * **Relay detection.** A distance-2 conflict `a – m – b` is detected by
//!   the owner of the *middle* vertex `m`, the only rank guaranteed to
//!   know both endpoint colors (they are its owned/ghost neighbors). The
//!   loser's owner is notified with a `Recolor` message; a second wave
//!   (`Done2`) closes the notification phase.
//! * **Learned constraints + randomized backoff.** A rank cannot see
//!   colors two hops away through a *ghost* middle, so a losing vertex
//!   permanently bans the conflicting color before re-coloring, and picks
//!   its next color from a hash-randomized window that widens with every
//!   loss. The bans prune the choice space; the randomization breaks the
//!   lockstep in which two symmetric losers shadow each other's first-fit
//!   choices forever. Convergence is a handful of phases in practice.

use crate::coloring::UNCOLORED;
use cmg_graph::util::{vertex_priority, FxHashMap, FxHashSet};
use cmg_graph::VertexId;
use cmg_partition::{ghost_neighbor_owners, DistGraph, HaloView};
use cmg_runtime::{
    fan_out, wire_codec, DoneWave, FanoutScheme, NeighborExchange, Rank, RankCtx, RankProgram,
    ReduceOutcome, Status, TreeAllreduce,
};

wire_codec! {
    /// Wire messages of the distance-2 coloring algorithm.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum D2Msg {
        /// Vertex `v` (global id) now has `color`.
        0 => Color {
            /// Recolored vertex.
            v: VertexId,
            /// Its new color.
            color: u32,
        },
        /// Sender finished coloring its phase-`phase` vertex set.
        1 => Done {
            /// Phase number.
            phase: u32,
        },
        /// Sender finished detection (all its `Recolor`s for `phase` are out).
        2 => Done2 {
            /// Phase number.
            phase: u32,
        },
        /// `v` (owned by the receiver) lost a conflict and must re-color,
        /// permanently avoiding `banned`.
        3 => Recolor {
            /// Losing vertex.
            v: VertexId,
            /// The color it clashed with.
            banned: u32,
        },
        /// Allreduce: subtree conflict count flowing up.
        4 => Reduce {
            /// Phase number.
            phase: u32,
            /// Conflicts in the sender's subtree.
            count: u64,
        },
        /// Allreduce: global conflict count flowing down.
        5 => Bcast {
            /// Phase number.
            phase: u32,
            /// Global conflict count.
            count: u64,
        },
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PState {
    Coloring,
    WaitingDone,
    WaitingDone2,
    WaitingReduce,
    WaitingBcast,
    Finished,
}

impl PState {
    fn to_u8(self) -> u8 {
        match self {
            PState::Coloring => 0,
            PState::WaitingDone => 1,
            PState::WaitingDone2 => 2,
            PState::WaitingReduce => 3,
            PState::WaitingBcast => 4,
            PState::Finished => 5,
        }
    }

    fn from_u8(b: u8) -> PState {
        match b {
            1 => PState::WaitingDone,
            2 => PState::WaitingDone2,
            3 => PState::WaitingReduce,
            4 => PState::WaitingBcast,
            5 => PState::Finished,
            _ => PState::Coloring,
        }
    }
}

wire_codec! {
    /// Snapshot records of [`DistColoring2`]: protocol position, colors,
    /// work lists, learned bans (emitted in sorted order — the map is
    /// only ever iterated for idempotent stamp-marking, so rebuild order
    /// is harmless but sorted emission keeps snapshot bytes
    /// deterministic), the dirty-ghost and re-color sets, and both DONE
    /// waves plus the allreduce accumulator.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum D2Snap {
        /// Protocol position (exactly one per snapshot, first).
        0 => Head {
            /// Current phase number.
            phase: u32,
            /// [`PState`] as `u8`.
            state: u8,
            /// Phases executed so far.
            phases_executed: u32,
            /// Total vertices re-colored over the run.
            total_recolored: u64,
            /// Bit 0: detection done.
            flags: u8,
            /// Progress within the phase's work list.
            u_pos: u64,
        },
        /// A local index (owned or ghost) with an assigned color.
        1 => Colored {
            /// Local index.
            idx: u32,
            /// Assigned color.
            color: u32,
        },
        /// An entry of the phase's work list `u_cur`, in list order.
        2 => Pending {
            /// Vertex to (re)color (local index).
            v: u32,
        },
        /// A learned permanent ban, sorted by `(v, color)`.
        3 => Banned {
            /// Owned vertex (local index).
            v: u32,
            /// Color it may never take.
            color: u32,
        },
        /// A ghost whose color changed this phase, in arrival order.
        4 => DirtyGhost {
            /// Ghost local index.
            idx: u32,
        },
        /// An entry of next phase's re-color set, in insertion order
        /// (`in_r` is rebuilt from these).
        5 => Recolor {
            /// Owned vertex (local index).
            v: u32,
        },
        /// In-flight first-wave DONE tally for one phase.
        6 => DoneCount {
            /// Phase the DONEs belong to.
            phase: u32,
            /// DONEs received so far.
            count: u64,
        },
        /// In-flight second-wave DONE2 tally for one phase.
        7 => Done2Count {
            /// Phase the DONE2s belong to.
            phase: u32,
            /// DONE2s received so far.
            count: u64,
        },
        /// In-flight allreduce accumulator for one phase.
        8 => Reduce {
            /// Phase being reduced.
            phase: u32,
            /// Child contributions absorbed so far.
            count: u64,
            /// Partial subtree conflict sum.
            value: u64,
        },
    }
}

/// One rank's state of the distributed distance-2 coloring.
pub struct DistColoring2 {
    dg: DistGraph,
    superstep_size: usize,
    /// Halo structure: interior/boundary split of the owned vertices.
    halo: HaloView,
    /// Current color per local index.
    color: Vec<u32>,
    /// Random priority per local index.
    priority: Vec<u64>,
    /// Owned vertices to (re)color this phase, and progress.
    u_cur: Vec<u32>,
    u_pos: usize,
    phase: u32,
    state: PState,
    /// Phases executed ("rounds" in the paper's terms).
    pub phases_executed: u32,
    /// Total vertices re-colored over the whole run.
    pub total_recolored: u64,
    /// Permanently banned colors per owned vertex (learned constraints).
    learned: FxHashMap<u32, FxHashSet<u32>>,
    /// Ghosts whose color changed this phase.
    dirty_ghosts: Vec<u32>,
    /// Next phase's re-color set (dedup via `in_r`).
    r_set: Vec<u32>,
    in_r: Vec<bool>,
    /// Boundary fan-out (the paper's NEW neighbor-customized scheme).
    exchange: NeighborExchange,
    /// Wave bookkeeping (per phase; ranks may run one phase apart).
    done: DoneWave,
    done2: DoneWave,
    /// Per-phase conflict-count allreduce (8-ary tree, as in d1).
    allreduce: TreeAllreduce<u64>,
    detection_done: bool,
    /// Scratch for forbidden-color computation.
    forbidden: Vec<u64>,
    stamp: u64,
    seed: u64,
}

impl DistColoring2 {
    /// Prepares the program for one rank; `superstep_size` as in the d1
    /// framework, `seed` for the priority function.
    pub fn new(dg: DistGraph, superstep_size: usize, seed: u64) -> Self {
        let n_total = dg.n_total();
        let priority = (0..n_total)
            .map(|i| vertex_priority(dg.global_ids[i] as u64, seed))
            .collect();
        let halo = HaloView::build(&dg);
        DistColoring2 {
            color: vec![UNCOLORED; n_total],
            priority,
            halo,
            u_cur: Vec::new(),
            u_pos: 0,
            phase: 0,
            state: PState::Coloring,
            phases_executed: 0,
            total_recolored: 0,
            learned: FxHashMap::default(),
            dirty_ghosts: Vec::new(),
            r_set: Vec::new(),
            in_r: vec![false; dg.n_local],
            exchange: NeighborExchange::new(FanoutScheme::Neighbor, dg.rank, dg.num_ranks),
            done: DoneWave::new(),
            done2: DoneWave::new(),
            allreduce: TreeAllreduce::new(dg.rank, dg.num_ranks, 8),
            detection_done: false,
            forbidden: vec![u64::MAX; n_total + 2],
            stamp: 0,
            superstep_size: superstep_size.max(1),
            seed,
            dg,
        }
    }

    /// Final colors of owned vertices.
    pub fn local_colors(&self) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        (0..self.dg.n_local).map(|v| (self.dg.global_ids[v], self.color[v]))
    }

    /// Largest owned color.
    pub fn max_local_color(&self) -> Option<u32> {
        (0..self.dg.n_local).map(|v| self.color[v]).max()
    }

    fn scope(&self) -> &[Rank] {
        &self.dg.neighbor_ranks
    }

    /// Picks a color for owned `v`: forbid distance-1 colors, distance-2
    /// colors visible through *owned* middles, and the learned bans.
    fn pick_color(&mut self, v: u32, ctx: &mut RankCtx<D2Msg>) -> u32 {
        self.stamp += 1;
        let mut work = 1u64;
        for &u in self.dg.neighbors(v) {
            work += 1;
            let cu = self.color[u as usize];
            if cu != UNCOLORED && (cu as usize) < self.forbidden.len() {
                self.forbidden[cu as usize] = self.stamp;
            }
            if !self.dg.is_ghost(u) {
                for &w in self.dg.neighbors(u) {
                    work += 1;
                    if w != v {
                        let cw = self.color[w as usize];
                        if cw != UNCOLORED && (cw as usize) < self.forbidden.len() {
                            self.forbidden[cw as usize] = self.stamp;
                        }
                    }
                }
            }
        }
        if let Some(banned) = self.learned.get(&v) {
            for &c in banned {
                if (c as usize) < self.forbidden.len() {
                    self.forbidden[c as usize] = self.stamp;
                }
            }
        }
        ctx.charge(work);
        // Randomized backoff (the standard escape from speculative-d2
        // lockstep): a vertex that has lost `l` conflicts picks uniformly
        // (hash-seeded, deterministic) among its first `l + 1` permissible
        // colors instead of strictly first-fit, so two symmetric losers
        // stop shadowing each other's choices.
        let losses = self.learned.get(&v).map_or(0, |s| s.len()) as u64;
        // The window must keep widening with losses: high-multiplicity
        // conflict sets (e.g. a star's leaves, all pairwise at distance 2)
        // need a window as large as the set to separate in few phases.
        let window = losses + 1;
        let pick = if window == 1 {
            0
        } else {
            let key = (self.dg.global_ids[v as usize] as u64) ^ ((self.phase as u64) << 32);
            vertex_priority(key, self.seed) % window
        };
        let mut c = 0u32;
        let mut skipped = 0u64;
        loop {
            let allowed =
                (c as usize) >= self.forbidden.len() || self.forbidden[c as usize] != self.stamp;
            if allowed {
                if skipped == pick {
                    break;
                }
                skipped += 1;
            }
            c += 1;
        }
        c
    }

    /// Publishes `(v, color)` to every neighbor rank owning a neighbor of
    /// `v` (the paper's NEW customized scheme).
    fn publish_color(&mut self, v: u32, c: u32, ctx: &mut RankCtx<D2Msg>) {
        let msg = D2Msg::Color {
            v: self.dg.global_ids[v as usize],
            color: c,
        };
        self.exchange
            .publish(ctx, ghost_neighbor_owners(&self.dg, v), &msg);
    }

    fn superstep(&mut self, ctx: &mut RankCtx<D2Msg>) -> bool {
        let end = (self.u_pos + self.superstep_size).min(self.u_cur.len());
        self.exchange.begin_superstep();
        while self.u_pos < end {
            let v = self.u_cur[self.u_pos];
            self.u_pos += 1;
            let c = self.pick_color(v, ctx);
            self.color[v as usize] = c;
            self.publish_color(v, c, ctx);
        }
        self.u_pos >= self.u_cur.len()
    }

    fn announce(&mut self, msg: D2Msg, ctx: &mut RankCtx<D2Msg>) {
        fan_out(ctx, self.scope(), &msg);
    }

    /// Adds owned vertex `v` to next phase's re-color set, banning `c`.
    fn mark_loser(&mut self, v: u32, c: u32) {
        self.learned.entry(v).or_default().insert(c);
        if !self.in_r[v as usize] {
            self.in_r[v as usize] = true;
            self.r_set.push(v);
        }
    }

    /// Conflict detection: distance-1 against ghosts for vertices colored
    /// this phase, and distance-2 relay detection through owned middles
    /// touched by this phase's color changes.
    fn detect_conflicts(&mut self, ctx: &mut RankCtx<D2Msg>) {
        // Dirty set: owned vertices colored this phase + updated ghosts.
        let mut dirty: Vec<u32> = self.u_cur[..self.u_pos].to_vec();
        dirty.append(&mut self.dirty_ghosts);
        let mut dirty_mark = vec![false; self.dg.n_total()];
        for &d in &dirty {
            dirty_mark[d as usize] = true;
        }

        // Distance-1 checks for own colored boundary vertices.
        for i in 0..self.u_pos {
            let v = self.u_cur[i];
            ctx.charge(self.dg.degree(v) as u64);
            let cv = self.color[v as usize];
            let pv = (self.priority[v as usize], self.dg.global_ids[v as usize]);
            let loses = self.dg.neighbors(v).iter().any(|&w| {
                self.dg.is_ghost(w)
                    && self.color[w as usize] == cv
                    && (self.priority[w as usize], self.dg.global_ids[w as usize]) > pv
            });
            if loses {
                self.mark_loser(v, cv);
            }
        }

        // Distance-2 relay detection through owned middles.
        for m in 0..self.dg.n_local as u32 {
            let nbrs_range = self.dg.xadj[m as usize]..self.dg.xadj[m as usize + 1];
            // Skip middles with no dirty neighbor (cheap scan).
            let any_dirty = self.dg.adj[nbrs_range.clone()]
                .iter()
                .any(|&u| dirty_mark[u as usize]);
            ctx.charge((nbrs_range.end - nbrs_range.start) as u64);
            if !any_dirty {
                continue;
            }
            let (lo, hi) = (nbrs_range.start, nbrs_range.end);
            for ia in lo..hi {
                let a = self.dg.adj[ia];
                if !dirty_mark[a as usize] {
                    continue;
                }
                let ca = self.color[a as usize];
                if ca == UNCOLORED {
                    continue;
                }
                for ib in lo..hi {
                    ctx.charge(1);
                    let b = self.dg.adj[ib];
                    if b == a || self.color[b as usize] != ca {
                        continue;
                    }
                    // Conflict pair (a, b) through middle m: smaller
                    // priority loses.
                    let pa = (self.priority[a as usize], self.dg.global_ids[a as usize]);
                    let pb = (self.priority[b as usize], self.dg.global_ids[b as usize]);
                    let loser = if pa < pb { a } else { b };
                    if self.dg.is_ghost(loser) {
                        ctx.send(
                            self.dg.owner(loser),
                            &D2Msg::Recolor {
                                v: self.dg.global_ids[loser as usize],
                                banned: ca,
                            },
                        );
                    } else {
                        self.mark_loser(loser, ca);
                    }
                }
            }
        }

        self.detection_done = true;
        self.announce(D2Msg::Done2 { phase: self.phase }, ctx);
        self.state = PState::WaitingDone2;
        self.try_finish_detection(ctx);
    }

    /// After `Done2` from every neighbor the re-color set is final.
    fn try_finish_detection(&mut self, ctx: &mut RankCtx<D2Msg>) {
        if self.state != PState::WaitingDone2 {
            return;
        }
        if !self.done2.ready(self.phase, self.scope().len()) {
            return;
        }
        self.state = PState::WaitingReduce;
        // The re-color set is final only now (remote Recolor messages may
        // grow it until the Done2 wave closes), so this is the earliest
        // point at which the phase's conflict count is known.
        if ctx.observed() {
            ctx.emit(cmg_obs::Event::ColoringRound {
                phase: self.phase,
                conflicts: self.r_set.len() as u64,
                colors_used: self.colors_used_so_far(),
            });
        }
        self.try_send_reduce(ctx);
    }

    /// Number of distinct color slots this rank's owned vertices occupy so
    /// far (max assigned color + 1; 0 before anything is colored).
    fn colors_used_so_far(&self) -> u64 {
        (0..self.dg.n_local)
            .map(|v| self.color[v])
            .filter(|&c| c != UNCOLORED)
            .map(|c| c as u64 + 1)
            .max()
            .unwrap_or(0)
    }

    fn try_send_reduce(&mut self, ctx: &mut RankCtx<D2Msg>) {
        if self.state != PState::WaitingReduce || !self.detection_done {
            return;
        }
        let own = self.r_set.len() as u64;
        match self.allreduce.try_complete(self.phase, own) {
            None => {}
            Some(ReduceOutcome::ToParent { parent, value }) => {
                ctx.send(
                    parent,
                    &D2Msg::Reduce {
                        phase: self.phase,
                        count: value,
                    },
                );
                self.state = PState::WaitingBcast;
            }
            Some(ReduceOutcome::Root { value }) => self.broadcast_and_act(value, ctx),
        }
    }

    fn broadcast_and_act(&mut self, total: u64, ctx: &mut RankCtx<D2Msg>) {
        let msg = D2Msg::Bcast {
            phase: self.phase,
            count: total,
        };
        fan_out(ctx, self.allreduce.children(), &msg);
        self.done.clear(self.phase);
        self.done2.clear(self.phase);
        if total == 0 {
            self.state = PState::Finished;
            return;
        }
        // Next phase with the re-color set.
        self.phase += 1;
        self.phases_executed += 1;
        self.detection_done = false;
        self.total_recolored += self.r_set.len() as u64;
        self.u_cur = std::mem::take(&mut self.r_set);
        for &v in &self.u_cur {
            self.in_r[v as usize] = false;
        }
        self.u_pos = 0;
        self.state = PState::Coloring;
        if self.superstep(ctx) {
            self.announce(D2Msg::Done { phase: self.phase }, ctx);
            self.state = PState::WaitingDone;
            self.try_detect(ctx);
        }
    }

    fn try_detect(&mut self, ctx: &mut RankCtx<D2Msg>) {
        if self.state != PState::WaitingDone {
            return;
        }
        if self.done.ready(self.phase, self.scope().len()) {
            self.detect_conflicts(ctx);
        }
    }

    fn handle(&mut self, msg: D2Msg, ctx: &mut RankCtx<D2Msg>) {
        ctx.charge(1);
        match msg {
            D2Msg::Color { v, color } => {
                let local = self.dg.global_to_local[&v];
                self.color[local as usize] = color;
                self.dirty_ghosts.push(local);
            }
            D2Msg::Done { phase } => {
                self.done.record(phase);
                self.try_detect(ctx);
            }
            D2Msg::Done2 { phase } => {
                self.done2.record(phase);
                self.try_finish_detection(ctx);
            }
            D2Msg::Recolor { v, banned } => {
                let local = self.dg.global_to_local[&v];
                debug_assert!(!self.dg.is_ghost(local));
                self.mark_loser(local, banned);
            }
            D2Msg::Reduce { phase, count } => {
                self.allreduce.absorb_child(phase, count);
                self.try_send_reduce(ctx);
            }
            D2Msg::Bcast { phase, count } => {
                debug_assert_eq!(phase, self.phase);
                self.broadcast_and_act(count, ctx);
            }
        }
    }

    fn status(&self) -> Status {
        if self.state == PState::Coloring && self.u_pos < self.u_cur.len() {
            Status::Active
        } else {
            Status::Idle
        }
    }
}

impl RankProgram for DistColoring2 {
    type Msg = D2Msg;
    type Snapshot = Vec<D2Snap>;
    type Meta = (DistGraph, usize, u64);

    fn snapshot(&self) -> Vec<D2Snap> {
        let mut recs = Vec::with_capacity(1 + self.dg.n_total() + self.u_cur.len());
        recs.push(D2Snap::Head {
            phase: self.phase,
            state: self.state.to_u8(),
            phases_executed: self.phases_executed,
            total_recolored: self.total_recolored,
            flags: self.detection_done as u8,
            u_pos: self.u_pos as u64,
        });
        for (idx, &color) in self.color.iter().enumerate() {
            if color != UNCOLORED {
                recs.push(D2Snap::Colored {
                    idx: idx as u32,
                    color,
                });
            }
        }
        for &v in &self.u_cur {
            recs.push(D2Snap::Pending { v });
        }
        let mut bans: Vec<(u32, u32)> = self
            .learned
            .iter()
            .flat_map(|(&v, set)| set.iter().map(move |&c| (v, c)))
            .collect();
        bans.sort_unstable();
        for (v, color) in bans {
            recs.push(D2Snap::Banned { v, color });
        }
        for &idx in &self.dirty_ghosts {
            recs.push(D2Snap::DirtyGhost { idx });
        }
        for &v in &self.r_set {
            recs.push(D2Snap::Recolor { v });
        }
        for &(phase, count) in self.done.in_flight() {
            recs.push(D2Snap::DoneCount {
                phase,
                count: count as u64,
            });
        }
        for &(phase, count) in self.done2.in_flight() {
            recs.push(D2Snap::Done2Count {
                phase,
                count: count as u64,
            });
        }
        for &(phase, count, value) in self.allreduce.in_flight() {
            recs.push(D2Snap::Reduce {
                phase,
                count: count as u64,
                value,
            });
        }
        recs
    }

    fn restore(meta: (DistGraph, usize, u64), snap: Vec<D2Snap>) -> Self {
        let (dg, superstep_size, seed) = meta;
        let mut p = DistColoring2::new(dg, superstep_size, seed);
        let mut done = Vec::new();
        let mut done2 = Vec::new();
        let mut reduce = Vec::new();
        for rec in snap {
            match rec {
                D2Snap::Head {
                    phase,
                    state,
                    phases_executed,
                    total_recolored,
                    flags,
                    u_pos,
                } => {
                    p.phase = phase;
                    p.state = PState::from_u8(state);
                    p.phases_executed = phases_executed;
                    p.total_recolored = total_recolored;
                    p.detection_done = flags & 1 != 0;
                    p.u_pos = u_pos as usize;
                }
                D2Snap::Colored { idx, color } => p.color[idx as usize] = color,
                D2Snap::Pending { v } => p.u_cur.push(v),
                D2Snap::Banned { v, color } => {
                    p.learned.entry(v).or_default().insert(color);
                }
                D2Snap::DirtyGhost { idx } => p.dirty_ghosts.push(idx),
                D2Snap::Recolor { v } => {
                    p.in_r[v as usize] = true;
                    p.r_set.push(v);
                }
                D2Snap::DoneCount { phase, count } => done.push((phase, count as usize)),
                D2Snap::Done2Count { phase, count } => done2.push((phase, count as usize)),
                D2Snap::Reduce {
                    phase,
                    count,
                    value,
                } => reduce.push((phase, count as usize, value)),
            }
        }
        p.done.restore_in_flight(done);
        p.done2.restore_in_flight(done2);
        p.allreduce.restore_in_flight(reduce);
        p
    }

    fn meta(&self) -> (DistGraph, usize, u64) {
        (self.dg.clone(), self.superstep_size, self.seed)
    }

    fn on_start(&mut self, ctx: &mut RankCtx<D2Msg>) -> Status {
        // Unlike distance-1, interior vertices are not conflict-free (two
        // interior vertices of different ranks may share a ghost-middle
        // path only if both are boundary — interior vertices are ≥ 2 hops
        // from any cross edge, so they *are* safe: color them first).
        // Boundary last: their speculative colors settle against fresher
        // interior information.
        self.u_cur = self
            .halo
            .interior
            .iter()
            .chain(self.halo.boundary.iter())
            .copied()
            .collect();
        self.u_pos = 0;
        self.phases_executed = 1;
        if self.superstep(ctx) {
            self.announce(D2Msg::Done { phase: 0 }, ctx);
            self.state = PState::WaitingDone;
            self.try_detect(ctx);
        }
        self.status()
    }

    fn on_round(
        &mut self,
        inbox: &mut Vec<(Rank, Vec<D2Msg>)>,
        ctx: &mut RankCtx<D2Msg>,
    ) -> Status {
        for (_, msgs) in inbox.drain(..) {
            for m in msgs {
                self.handle(m, ctx);
            }
        }
        if self.state == PState::Coloring && self.superstep(ctx) {
            self.announce(D2Msg::Done { phase: self.phase }, ctx);
            self.state = PState::WaitingDone;
            self.try_detect(ctx);
        }
        self.status()
    }
}

/// Assembles the global distance-2 coloring from finished rank programs.
pub fn assemble_d2(programs: &[DistColoring2], num_vertices: usize) -> crate::Coloring {
    let mut coloring = crate::Coloring::uncolored(num_vertices);
    for p in programs {
        for (v, c) in p.local_colors() {
            coloring.set(v, c);
        }
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance2::{greedy_d2, validate_d2};
    use crate::seq::Ordering;
    use cmg_graph::generators::{circuit_like, erdos_renyi, grid2d, star};
    use cmg_graph::CsrGraph;
    use cmg_partition::simple::{block_partition, hash_partition};
    use cmg_partition::Partition;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine};

    fn run_d2(g: &CsrGraph, partition: &Partition, s: usize) -> (crate::Coloring, u32) {
        let parts = DistGraph::build_all(g, partition);
        let programs: Vec<DistColoring2> = parts
            .into_iter()
            .map(|dg| DistColoring2::new(dg, s, 99))
            .collect();
        let cfg = EngineConfig {
            cost: CostModel::compute_only(),
            max_rounds: 100_000,
            ..Default::default()
        };
        let result = SimEngine::new(programs, cfg).run();
        assert!(!result.hit_round_cap, "d2 coloring did not quiesce");
        let phases = result
            .programs
            .iter()
            .map(|p| p.phases_executed)
            .max()
            .unwrap_or(0);
        (assemble_d2(&result.programs, g.num_vertices()), phases)
    }

    #[test]
    fn codec_round_trip() {
        use cmg_runtime::WireMessage;
        let msgs = [
            D2Msg::Color { v: 1, color: 2 },
            D2Msg::Done { phase: 3 },
            D2Msg::Done2 { phase: 4 },
            D2Msg::Recolor { v: 5, banned: 6 },
            D2Msg::Reduce { phase: 7, count: 8 },
            D2Msg::Bcast { phase: 9, count: 0 },
        ];
        let mut buf = bytes::BytesMut::new();
        for m in &msgs {
            m.encode(&mut buf);
        }
        let decoded: Vec<D2Msg> = cmg_runtime::message::decode_all(buf.freeze()).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn single_rank_matches_d2_validity() {
        let g = grid2d(8, 8);
        let (c, phases) = run_d2(&g, &Partition::single(64), 1000);
        validate_d2(&c, &g).unwrap();
        assert_eq!(phases, 1);
    }

    #[test]
    fn grid_d2_across_ranks() {
        let g = grid2d(12, 12);
        for parts in [2u32, 4, 9] {
            let p = block_partition(144, parts);
            let (c, phases) = run_d2(&g, &p, 8);
            validate_d2(&c, &g).unwrap();
            assert!(phases <= 12, "{phases} phases");
            // Stay in the ballpark of sequential d2 (never worse than 3x).
            let seq = greedy_d2(&g, Ordering::Natural).num_colors();
            assert!(c.num_colors() <= 3 * seq, "{} vs seq {seq}", c.num_colors());
        }
    }

    #[test]
    fn random_graph_d2_many_ranks() {
        let g = erdos_renyi(150, 450, 7);
        let p = hash_partition(150, 8, 1);
        let (c, _) = run_d2(&g, &p, 4);
        validate_d2(&c, &g).unwrap();
        assert!(c.num_colors() <= g.max_degree() * g.max_degree() + 1);
    }

    #[test]
    fn star_center_split_from_leaves() {
        // All leaves mutually at distance 2 through the hub: the hub's
        // owner must relay-detect every leaf pair conflict.
        let g = star(20);
        let p = hash_partition(20, 4, 2);
        let (c, _) = run_d2(&g, &p, 2);
        validate_d2(&c, &g).unwrap();
        assert_eq!(c.num_colors(), 20);
    }

    #[test]
    fn circuit_graph_d2() {
        let g = circuit_like(1_000, 11);
        let p = block_partition(g.num_vertices(), 6);
        let (c, phases) = run_d2(&g, &p, 100);
        validate_d2(&c, &g).unwrap();
        assert!(phases <= 8, "{phases} phases");
    }

    #[test]
    fn superstep_one_worst_case_speculation() {
        let g = grid2d(6, 6);
        let p = hash_partition(36, 6, 3);
        let (c, _) = run_d2(&g, &p, 1);
        validate_d2(&c, &g).unwrap();
    }

    #[test]
    fn empty_and_tiny() {
        let g = CsrGraph::empty(3);
        let (c, _) = run_d2(&g, &block_partition(3, 2), 10);
        assert!(c.is_complete());
    }
}
