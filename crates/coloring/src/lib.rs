//! # cmg-coloring
//!
//! Distance-1 vertex coloring: the paper's distributed speculative
//! framework (§4) plus the sequential algorithms and baselines it builds
//! on and is compared against.
//!
//! * [`coloring`]: the coloring result type and its verification;
//! * [`seq`]: sequential greedy coloring under the classic vertex
//!   orderings (natural, random, largest-first, smallest-last,
//!   incidence-degree, saturation) and lower bounds for judging quality;
//! * [`dist`]: the speculative/iterative distributed framework
//!   (Algorithm 4.1) with configurable superstep size, color-selection
//!   strategy, interior/boundary order, and the three communication
//!   variants — FIAB (broadcast), FIAC (customized to all ranks), and the
//!   paper's new neighbor-customized scheme;
//! * [`jp`]: the Jones–Plassmann maximal-independent-set baseline the
//!   framework is shown to beat.

pub mod balance;
pub mod coloring;
pub mod dist;
pub mod dist2;
pub mod distance2;
pub mod jp;
pub mod repair;
pub mod seq;

pub use coloring::Coloring;
pub use dist::{
    assemble_coloring, ColorChoice, ColorMsg, ColorSnap, ColoringConfig, CommVariant, DistColoring,
    LocalOrder,
};
pub use dist2::{assemble_d2, D2Msg, D2Snap, DistColoring2};
pub use jp::{assemble_jp, JonesPlassmann, JpSnap, JpSnapshot};
pub use repair::{invalidate_colors, repair_frontier_colors, ColorRetained};
