//! The distributed speculative/iterative coloring framework (§4,
//! Algorithm 4.1) with the paper's new neighbor-customized communication
//! scheme and the FIAC / FIAB variants it improves on.
//!
//! Each *phase* (an iteration of Algorithm 4.1's `while` loop) consists of:
//!
//! 1. **speculative coloring** of the phase's vertex set `U` in supersteps
//!    of `s` vertices, exchanging boundary colors after each superstep;
//! 2. a **`DONE` wave** so every rank knows its neighbors' colors for the
//!    phase are complete ("Wait until all incoming messages are
//!    successfully received");
//! 3. **conflict detection** — local, no communication: for a conflict
//!    edge, the endpoint with the smaller pre-assigned random priority
//!    `r(v)` is re-colored next phase;
//! 4. a **tree allreduce** of the global conflict count, realizing the
//!    framework's `while ∃j, Uj ≠ ∅` termination test.
//!
//! Interior vertices are colored entirely locally, strictly before or
//! strictly after the boundary (per [`LocalOrder`]), following the
//! recommendation of Bozdağ et al. that the paper adopts.

use crate::coloring::{Coloring, UNCOLORED};
use cmg_graph::util::vertex_priority;
use cmg_graph::VertexId;
use cmg_partition::{ghost_neighbor_owners, DistGraph, HaloView};
use cmg_runtime::{
    fan_out, wire_codec, DoneWave, FanoutScheme, NeighborExchange, Rank, RankCtx, RankProgram,
    ReduceOutcome, Status, TreeAllreduce,
};

/// Communication variant for boundary-color exchange (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommVariant {
    /// FIAB: the same message (all colors of the superstep) to every rank.
    Fiab,
    /// FIAC: customized per destination, but sent to every rank (empty
    /// marker when a rank owns no affected neighbor).
    Fiac,
    /// The paper's new scheme: customized messages to neighbor ranks only
    /// — fewer messages *and* less volume.
    Neighbor,
}

impl CommVariant {
    /// The substrate fan-out scheme this variant maps to.
    fn fanout(self) -> FanoutScheme {
        match self {
            CommVariant::Fiab => FanoutScheme::Fiab,
            CommVariant::Fiac => FanoutScheme::Fiac,
            CommVariant::Neighbor => FanoutScheme::Neighbor,
        }
    }
}

/// How a processor chooses a color for a vertex (§4.1's design question).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorChoice {
    /// Smallest color not used by any neighbor.
    FirstFit,
    /// First-fit scanning from a rank-dependent offset (reduces same-color
    /// collisions between ranks at the price of more colors).
    StaggeredFirstFit,
    /// Least-locally-used permissible color among those seen so far.
    LeastUsed,
}

/// Relative order of interior and boundary coloring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalOrder {
    /// Color interior vertices first, then the boundary phases.
    InteriorFirst,
    /// Run the boundary phases first, color interior at the end.
    BoundaryFirst,
}

/// Configuration of the distributed coloring algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColoringConfig {
    /// Superstep size `s`: vertices colored between communication steps.
    pub superstep_size: usize,
    /// Communication variant.
    pub comm: CommVariant,
    /// Color-selection strategy.
    pub color_choice: ColorChoice,
    /// Interior/boundary order.
    pub order: LocalOrder,
    /// Seed of the pre-assigned random priority function `r(v)`.
    pub seed: u64,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        ColoringConfig {
            superstep_size: 1000, // the paper's recommendation for
            // well-partitioned graphs
            comm: CommVariant::Neighbor,
            color_choice: ColorChoice::FirstFit,
            order: LocalOrder::InteriorFirst,
            seed: 0x5eed,
        }
    }
}

wire_codec! {
    /// Wire messages of the coloring algorithm.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ColorMsg {
        /// Vertex `v` (global id) now has `color`.
        0 => Color {
            /// Recolored vertex.
            v: VertexId,
            /// Its new color.
            color: u32,
        },
        /// FIAC's customized-but-empty message.
        1 => Empty,
        /// Sender finished coloring phase `phase`.
        2 => Done {
            /// Phase number.
            phase: u32,
        },
        /// Allreduce: subtree conflict count flowing up.
        3 => Reduce {
            /// Phase number.
            phase: u32,
            /// Conflicts in the sender's subtree.
            count: u64,
        },
        /// Allreduce: global conflict count flowing down.
        4 => Bcast {
            /// Phase number.
            phase: u32,
            /// Global conflict count.
            count: u64,
        },
    }
}

/// Where the rank is in the per-phase protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PState {
    Coloring,
    WaitingDone,
    WaitingReduce,
    WaitingBcast,
    Finished,
}

impl PState {
    fn to_u8(self) -> u8 {
        match self {
            PState::Coloring => 0,
            PState::WaitingDone => 1,
            PState::WaitingReduce => 2,
            PState::WaitingBcast => 3,
            PState::Finished => 4,
        }
    }

    fn from_u8(b: u8) -> PState {
        match b {
            1 => PState::WaitingDone,
            2 => PState::WaitingReduce,
            3 => PState::WaitingBcast,
            4 => PState::Finished,
            _ => PState::Coloring,
        }
    }
}

wire_codec! {
    /// Snapshot records of [`DistColoring`]: phase-protocol position,
    /// assigned colors (owned and ghost), the phase's remaining work
    /// list, color-usage tallies, and the in-flight state of the DONE
    /// wave and conflict-count allreduce. The halo view, priorities,
    /// stagger offset, fan-out scheme, and stamp scratch are rebuilt
    /// from the graph + config on restore.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ColorSnap {
        /// Protocol position (exactly one per snapshot, first).
        0 => Head {
            /// Current phase number.
            phase: u32,
            /// [`PState`] as `u8`.
            state: u8,
            /// Phases executed so far.
            phases_executed: u32,
            /// Total vertices re-colored due to conflicts.
            total_recolored: u64,
            /// Bit 0: detection done; bit 1: interior colored.
            flags: u8,
            /// This rank's conflict count for the current phase.
            my_conflicts: u64,
            /// Progress within the phase's work list.
            u_pos: u64,
        },
        /// A local index (owned or ghost) with an assigned color.
        1 => Colored {
            /// Local index.
            idx: u32,
            /// Assigned color.
            color: u32,
        },
        /// An entry of the phase's work list `u_cur`, in list order.
        2 => Pending {
            /// Vertex to (re)color (local index).
            v: u32,
        },
        /// One slot of the LeastUsed usage table, in color order
        /// (zero-count slots included — the table length is state).
        3 => Usage {
            /// Local uses of this color slot.
            count: u64,
        },
        /// In-flight DONE-wave tally for one phase.
        4 => DoneCount {
            /// Phase the DONEs belong to.
            phase: u32,
            /// DONEs received so far.
            count: u64,
        },
        /// In-flight allreduce accumulator for one phase.
        5 => Reduce {
            /// Phase being reduced.
            phase: u32,
            /// Child contributions absorbed so far.
            count: u64,
            /// Partial subtree conflict sum.
            value: u64,
        },
    }
}

/// One rank's state of the distributed coloring algorithm.
pub struct DistColoring {
    dg: DistGraph,
    cfg: ColoringConfig,
    /// Halo structure: interior/boundary split of the owned vertices.
    halo: HaloView,
    /// Current color per local index (owned + ghost).
    color: Vec<u32>,
    /// Pre-assigned random priority `r(v)` per local index.
    priority: Vec<u64>,
    /// Vertices to (re)color this phase, and progress within them.
    u_cur: Vec<u32>,
    u_pos: usize,
    phase: u32,
    state: PState,
    /// Phases executed so far (the paper's "rounds").
    pub phases_executed: u32,
    /// Total vertices this rank had to re-color due to conflicts.
    pub total_recolored: u64,
    /// Boundary fan-out under the configured communication variant.
    exchange: NeighborExchange,
    /// Per-phase DONE wave (ranks may run one phase ahead).
    done: DoneWave,
    /// Per-phase conflict-count allreduce (8-ary tree: the shallow
    /// fan-out mirrors optimized MPI collectives — Blue Gene/P even has
    /// a dedicated hardware tree network for them).
    allreduce: TreeAllreduce<u64>,
    detection_done: bool,
    my_conflicts: u64,
    interior_colored: bool,
    /// Scratch: stamp-based forbidden-color set.
    forbidden: Vec<u64>,
    stamp: u64,
    /// LeastUsed: local usage count per color.
    usage: Vec<u64>,
    /// StaggeredFirstFit offset.
    stagger: u32,
    /// Warm start ([`DistColoring::warm`]): `on_start` keeps the
    /// pre-seeded retained colors and dirty work list instead of coloring
    /// from scratch. Not snapshotted — it is consumed before the first
    /// round, and restores resume past `on_start`.
    warm: bool,
}

impl DistColoring {
    /// Prepares the program for one rank.
    pub fn new(dg: DistGraph, cfg: ColoringConfig) -> Self {
        let n_total = dg.n_total();
        let priority = (0..n_total)
            .map(|i| vertex_priority(dg.global_ids[i] as u64, cfg.seed))
            .collect();
        let halo = HaloView::build(&dg);
        let max_deg = (0..dg.n_local as u32)
            .map(|v| dg.degree(v))
            .max()
            .unwrap_or(0);
        let stagger = if dg.num_ranks <= 1 {
            0
        } else {
            ((dg.rank as u64 * (max_deg as u64 + 1)) / dg.num_ranks as u64) as u32
        };
        DistColoring {
            color: vec![UNCOLORED; n_total],
            priority,
            halo,
            u_cur: Vec::new(),
            u_pos: 0,
            phase: 0,
            state: PState::Coloring,
            phases_executed: 0,
            total_recolored: 0,
            exchange: NeighborExchange::new(cfg.comm.fanout(), dg.rank, dg.num_ranks),
            done: DoneWave::new(),
            allreduce: TreeAllreduce::new(dg.rank, dg.num_ranks, 8),
            detection_done: false,
            my_conflicts: 0,
            interior_colored: false,
            forbidden: vec![u64::MAX; n_total + 2],
            stamp: 0,
            usage: Vec::new(),
            stagger,
            warm: false,
            cfg,
            dg,
        }
    }

    /// Prepares a warm-start program: retained colors (owned *and* ghost,
    /// from the same global view on every rank, so the halo is consistent
    /// without catch-up messages) are kept, and only the owned vertices
    /// `dirty` deems stale are re-colored — they form the first phase's
    /// work list. The ordinary phase protocol (speculate → DONE wave →
    /// conflict detection → allreduce) then repairs the frontier; clean
    /// vertices are never revisited, so their colors survive verbatim.
    pub fn warm(
        dg: DistGraph,
        cfg: ColoringConfig,
        colors: &[u32],
        dirty: impl Fn(VertexId) -> bool,
    ) -> Self {
        let mut p = DistColoring::new(dg, cfg);
        // Dirty vertices start uncolored everywhere — owned *and* ghost
        // copies — so no rank forbids (or trusts) a stale color; fresh
        // colors of the frontier arrive through the ordinary exchange.
        for i in 0..p.dg.n_total() {
            let g = p.dg.global_ids[i];
            p.color[i] = if dirty(g) {
                UNCOLORED
            } else {
                colors[g as usize]
            };
        }
        p.u_cur = p.halo.dirty_split(&p.dg, &dirty);
        p.u_pos = 0;
        // The retained interior is already colored; broadcast_and_act must
        // not re-color it at the end.
        p.interior_colored = true;
        if cfg.color_choice == ColorChoice::LeastUsed {
            for v in 0..p.dg.n_local {
                let c = p.color[v];
                if c != UNCOLORED {
                    if c as usize >= p.usage.len() {
                        p.usage.resize(c as usize + 1, 0);
                    }
                    p.usage[c as usize] += 1;
                }
            }
        }
        p.warm = true;
        p
    }

    /// Final colors of owned vertices as `(global id, color)`.
    pub fn local_colors(&self) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        (0..self.dg.n_local).map(|v| (self.dg.global_ids[v], self.color[v]))
    }

    /// Access to the distributed graph.
    pub fn dist_graph(&self) -> &DistGraph {
        &self.dg
    }

    /// `true` once the rank has passed the final conflict-free allreduce
    /// and left the phase protocol. A rank that stops stepping while this
    /// is `false` was abandoned mid-phase (e.g. a lost message); the
    /// `cmg-check` termination oracle asserts it after every run.
    pub fn is_finished(&self) -> bool {
        self.state == PState::Finished
    }

    /// Counts conflict edges visible from this rank, each counted exactly
    /// once globally: owned–owned edges by the smaller local endpoint,
    /// owned–ghost edges by the smaller *global* id. Summing over ranks
    /// therefore validates the whole coloring without the global graph.
    pub fn local_conflict_count(&self) -> usize {
        let mut conflicts = 0;
        for v in 0..self.dg.n_local as u32 {
            let cv = self.color[v as usize];
            let vg = self.dg.global_ids[v as usize];
            for &u in self.dg.neighbors(v) {
                let ug = self.dg.global_ids[u as usize];
                if vg < ug && self.color[u as usize] == cv {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    /// Largest color used on this rank's owned vertices (`None` if the
    /// rank owns nothing).
    pub fn max_local_color(&self) -> Option<u32> {
        (0..self.dg.n_local).map(|v| self.color[v]).max()
    }

    /// Ranks in the color/Done communication scope of this rank.
    fn scope(&self) -> Vec<Rank> {
        self.exchange.scope(&self.dg.neighbor_ranks)
    }

    /// Picks a permissible color for owned vertex `v` per the configured
    /// strategy, charging one work unit per adjacency entry scanned.
    fn pick_color(&mut self, v: u32, ctx: &mut RankCtx<ColorMsg>) -> u32 {
        self.stamp += 1;
        let deg = self.dg.degree(v);
        ctx.charge(deg as u64 + 1);
        for &u in self.dg.neighbors(v) {
            let c = self.color[u as usize];
            if c != UNCOLORED && (c as usize) < self.forbidden.len() {
                self.forbidden[c as usize] = self.stamp;
            }
        }
        let first_free_from = |from: u32, forbidden: &[u64], stamp: u64| -> u32 {
            let mut c = from;
            while (c as usize) < forbidden.len() && forbidden[c as usize] == stamp {
                c += 1;
            }
            c
        };
        match self.cfg.color_choice {
            ColorChoice::FirstFit => first_free_from(0, &self.forbidden, self.stamp),
            ColorChoice::StaggeredFirstFit => {
                // Scan from the rank's offset; the offset keeps concurrent
                // ranks on disjoint color ranges, trading color count for
                // fewer conflicts.
                first_free_from(self.stagger, &self.forbidden, self.stamp)
            }
            ColorChoice::LeastUsed => {
                let mut best: Option<(u64, u32)> = None;
                for c in 0..self.usage.len() as u32 {
                    if self.forbidden[c as usize] != self.stamp {
                        let u = self.usage[c as usize];
                        if best.is_none_or(|(bu, _)| u < bu) {
                            best = Some((u, c));
                        }
                    }
                }
                let c = match best {
                    Some((_, c)) => c,
                    None => first_free_from(0, &self.forbidden, self.stamp),
                };
                if c as usize >= self.usage.len() {
                    self.usage.resize(c as usize + 1, 0);
                }
                self.usage[c as usize] += 1;
                c
            }
        }
    }

    /// Colors all interior vertices (purely local).
    fn color_interior(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        for i in 0..self.halo.interior.len() {
            let v = self.halo.interior[i];
            let c = self.pick_color(v, ctx);
            self.color[v as usize] = c;
        }
        self.interior_colored = true;
    }

    /// Sends `(v, color)` per the communication variant: FIAB broadcasts,
    /// the customized schemes publish to the owners of `v`'s ghost
    /// neighbors (once each).
    fn publish_color(&mut self, v: u32, c: u32, ctx: &mut RankCtx<ColorMsg>) {
        let msg = ColorMsg::Color {
            v: self.dg.global_ids[v as usize],
            color: c,
        };
        self.exchange
            .publish(ctx, ghost_neighbor_owners(&self.dg, v), &msg);
    }

    /// Runs one superstep: colors up to `s` vertices of `u_cur` and
    /// publishes their colors. Returns `true` if the phase's coloring is
    /// complete.
    fn superstep(&mut self, ctx: &mut RankCtx<ColorMsg>) -> bool {
        let end = (self.u_pos + self.cfg.superstep_size.max(1)).min(self.u_cur.len());
        self.exchange.begin_superstep();
        while self.u_pos < end {
            let v = self.u_cur[self.u_pos];
            self.u_pos += 1;
            let c = self.pick_color(v, ctx);
            self.color[v as usize] = c;
            self.publish_color(v, c, ctx);
        }
        // FIAC: every other rank gets a (possibly empty) customized
        // message each superstep.
        self.exchange.finish_superstep(ctx, &ColorMsg::Empty);
        self.u_pos >= self.u_cur.len()
    }

    /// Called when this rank finishes coloring its `u_cur`: announce DONE.
    fn announce_done(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        let msg = ColorMsg::Done { phase: self.phase };
        fan_out(ctx, &self.scope(), &msg);
        self.state = PState::WaitingDone;
    }

    /// Conflict detection (Algorithm 4.1's second block): among the
    /// vertices colored this phase, re-color those that lose the random
    /// tie-break on a conflict edge.
    fn detect_conflicts(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        let mut r_set = Vec::new();
        let u_cur = std::mem::take(&mut self.u_cur);
        for &v in &u_cur {
            ctx.charge(self.dg.degree(v) as u64);
            let cv = self.color[v as usize];
            let pv = (self.priority[v as usize], self.dg.global_ids[v as usize]);
            for &w in self.dg.neighbors(v) {
                if self.dg.is_ghost(w)
                    && self.color[w as usize] == cv
                    && (self.priority[w as usize], self.dg.global_ids[w as usize]) > pv
                {
                    r_set.push(v);
                    break;
                }
            }
        }
        self.my_conflicts = r_set.len() as u64;
        self.total_recolored += self.my_conflicts;
        if ctx.observed() {
            ctx.emit(cmg_obs::Event::ColoringRound {
                phase: self.phase,
                conflicts: self.my_conflicts,
                colors_used: self.colors_used_so_far(),
            });
        }
        self.u_cur = r_set;
        self.u_pos = 0;
        self.detection_done = true;
        self.state = PState::WaitingReduce;
        self.try_send_reduce(ctx);
    }

    /// Number of distinct color slots this rank's owned vertices occupy so
    /// far (max assigned color + 1; 0 before anything is colored).
    fn colors_used_so_far(&self) -> u64 {
        (0..self.dg.n_local)
            .map(|v| self.color[v])
            .filter(|&c| c != UNCOLORED)
            .map(|c| c as u64 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Sends the subtree count up (or broadcasts at the root) once this
    /// rank's detection and all children's counts are in.
    fn try_send_reduce(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        if !self.detection_done || self.state != PState::WaitingReduce {
            return;
        }
        match self.allreduce.try_complete(self.phase, self.my_conflicts) {
            None => {}
            Some(ReduceOutcome::ToParent { parent, value }) => {
                ctx.send(
                    parent,
                    &ColorMsg::Reduce {
                        phase: self.phase,
                        count: value,
                    },
                );
                self.state = PState::WaitingBcast;
            }
            Some(ReduceOutcome::Root { value }) => {
                // Root: the global count is known; broadcast and act.
                self.broadcast_and_act(value, ctx);
            }
        }
    }

    /// Forwards the global count to children and starts the next phase or
    /// finishes.
    fn broadcast_and_act(&mut self, total: u64, ctx: &mut RankCtx<ColorMsg>) {
        let msg = ColorMsg::Bcast {
            phase: self.phase,
            count: total,
        };
        fan_out(ctx, self.allreduce.children(), &msg);
        self.done.clear(self.phase);
        if total == 0 {
            if !self.interior_colored {
                self.color_interior(ctx);
            }
            self.state = PState::Finished;
        } else {
            self.phase += 1;
            self.phases_executed += 1;
            self.detection_done = false;
            self.my_conflicts = 0;
            self.state = PState::Coloring;
            if self.superstep(ctx) {
                self.announce_done(ctx);
                self.try_detect(ctx);
            }
        }
    }

    /// Runs conflict detection once every scope rank's DONE for the
    /// current phase has arrived (and our own coloring is finished).
    fn try_detect(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        if self.state != PState::WaitingDone {
            return;
        }
        if self.done.ready(self.phase, self.scope().len()) {
            self.detect_conflicts(ctx);
        }
    }

    fn handle(&mut self, msg: ColorMsg, ctx: &mut RankCtx<ColorMsg>) {
        ctx.charge(1);
        match msg {
            ColorMsg::Color { v, color } => {
                // Under FIAB the vertex may be unknown here; ignore then.
                if let Some(&local) = self.dg.global_to_local.get(&v) {
                    self.color[local as usize] = color;
                }
            }
            ColorMsg::Empty => {}
            ColorMsg::Done { phase } => {
                self.done.record(phase);
                self.try_detect(ctx);
            }
            ColorMsg::Reduce { phase, count } => {
                self.allreduce.absorb_child(phase, count);
                self.try_send_reduce(ctx);
            }
            ColorMsg::Bcast { phase, count } => {
                debug_assert_eq!(phase, self.phase);
                debug_assert_eq!(self.state, PState::WaitingBcast);
                self.broadcast_and_act(count, ctx);
            }
        }
    }
}

impl RankProgram for DistColoring {
    type Msg = ColorMsg;
    type Snapshot = Vec<ColorSnap>;
    type Meta = (DistGraph, ColoringConfig);

    fn snapshot(&self) -> Vec<ColorSnap> {
        let mut recs = Vec::with_capacity(1 + self.dg.n_total() + self.u_cur.len());
        recs.push(ColorSnap::Head {
            phase: self.phase,
            state: self.state.to_u8(),
            phases_executed: self.phases_executed,
            total_recolored: self.total_recolored,
            flags: (self.detection_done as u8) | ((self.interior_colored as u8) << 1),
            my_conflicts: self.my_conflicts,
            u_pos: self.u_pos as u64,
        });
        for (idx, &color) in self.color.iter().enumerate() {
            if color != UNCOLORED {
                recs.push(ColorSnap::Colored {
                    idx: idx as u32,
                    color,
                });
            }
        }
        for &v in &self.u_cur {
            recs.push(ColorSnap::Pending { v });
        }
        for &count in &self.usage {
            recs.push(ColorSnap::Usage { count });
        }
        for &(phase, count) in self.done.in_flight() {
            recs.push(ColorSnap::DoneCount {
                phase,
                count: count as u64,
            });
        }
        for &(phase, count, value) in self.allreduce.in_flight() {
            recs.push(ColorSnap::Reduce {
                phase,
                count: count as u64,
                value,
            });
        }
        recs
    }

    fn restore(meta: (DistGraph, ColoringConfig), snap: Vec<ColorSnap>) -> Self {
        let (dg, cfg) = meta;
        let mut p = DistColoring::new(dg, cfg);
        let mut done = Vec::new();
        let mut reduce = Vec::new();
        for rec in snap {
            match rec {
                ColorSnap::Head {
                    phase,
                    state,
                    phases_executed,
                    total_recolored,
                    flags,
                    my_conflicts,
                    u_pos,
                } => {
                    p.phase = phase;
                    p.state = PState::from_u8(state);
                    p.phases_executed = phases_executed;
                    p.total_recolored = total_recolored;
                    p.detection_done = flags & 1 != 0;
                    p.interior_colored = flags & 2 != 0;
                    p.my_conflicts = my_conflicts;
                    p.u_pos = u_pos as usize;
                }
                ColorSnap::Colored { idx, color } => p.color[idx as usize] = color,
                ColorSnap::Pending { v } => p.u_cur.push(v),
                ColorSnap::Usage { count } => p.usage.push(count),
                ColorSnap::DoneCount { phase, count } => done.push((phase, count as usize)),
                ColorSnap::Reduce {
                    phase,
                    count,
                    value,
                } => reduce.push((phase, count as usize, value)),
            }
        }
        p.done.restore_in_flight(done);
        p.allreduce.restore_in_flight(reduce);
        p
    }

    fn meta(&self) -> (DistGraph, ColoringConfig) {
        (self.dg.clone(), self.cfg)
    }

    fn on_start(&mut self, ctx: &mut RankCtx<ColorMsg>) -> Status {
        if self.warm {
            // Warm start: retained colors and the dirty work list were
            // seeded by [`DistColoring::warm`]; go straight to the phase
            // protocol over the frontier.
            self.warm = false;
        } else {
            if self.cfg.order == LocalOrder::InteriorFirst {
                self.color_interior(ctx);
            }
            self.u_cur = self.halo.boundary.clone();
            self.u_pos = 0;
        }
        self.phases_executed = 1;
        if self.superstep(ctx) {
            self.announce_done(ctx);
            self.try_detect(ctx);
        }
        self.status()
    }

    fn on_round(
        &mut self,
        inbox: &mut Vec<(Rank, Vec<ColorMsg>)>,
        ctx: &mut RankCtx<ColorMsg>,
    ) -> Status {
        for (_, msgs) in inbox.drain(..) {
            for m in msgs {
                self.handle(m, ctx);
            }
        }
        if self.state == PState::Coloring && self.superstep(ctx) {
            self.announce_done(ctx);
            self.try_detect(ctx);
        }
        self.status()
    }
}

impl DistColoring {
    fn status(&self) -> Status {
        if self.state == PState::Coloring && self.u_pos < self.u_cur.len() {
            Status::Active
        } else {
            Status::Idle
        }
    }
}

/// Assembles the global coloring from finished rank programs.
pub fn assemble_coloring(programs: &[DistColoring], num_vertices: usize) -> Coloring {
    let mut coloring = Coloring::uncolored(num_vertices);
    for p in programs {
        for (v, c) in p.local_colors() {
            coloring.set(v, c);
        }
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::{circuit_like, complete, erdos_renyi, grid2d};
    use cmg_graph::CsrGraph;
    use cmg_partition::simple::{block_partition, grid2d_partition, hash_partition};
    use cmg_partition::Partition;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine};

    fn free_config() -> EngineConfig {
        EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        }
    }

    fn run_coloring(
        g: &CsrGraph,
        partition: &Partition,
        cfg: ColoringConfig,
    ) -> (Coloring, cmg_runtime::RunStats, u32) {
        let parts = DistGraph::build_all(g, partition);
        let programs: Vec<DistColoring> = parts
            .into_iter()
            .map(|dg| DistColoring::new(dg, cfg))
            .collect();
        let result = SimEngine::new(programs, free_config()).run();
        assert!(!result.hit_round_cap, "coloring did not quiesce");
        let phases = result
            .programs
            .iter()
            .map(|p| p.phases_executed)
            .max()
            .unwrap_or(0);
        (
            assemble_coloring(&result.programs, g.num_vertices()),
            result.stats,
            phases,
        )
    }

    #[test]
    fn message_codec_round_trip() {
        use cmg_runtime::WireMessage;
        let msgs = [
            ColorMsg::Color { v: 3, color: 9 },
            ColorMsg::Empty,
            ColorMsg::Done { phase: 4 },
            ColorMsg::Reduce { phase: 1, count: 7 },
            ColorMsg::Bcast { phase: 2, count: 0 },
        ];
        let mut buf = bytes::BytesMut::new();
        for m in &msgs {
            m.encode(&mut buf);
        }
        let decoded: Vec<ColorMsg> = cmg_runtime::message::decode_all(buf.freeze()).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn single_rank_colors_like_sequential_greedy_bound() {
        let g = grid2d(10, 10);
        let (c, _, phases) = run_coloring(&g, &Partition::single(100), ColoringConfig::default());
        c.validate(&g).unwrap();
        assert_eq!(c.num_colors(), 2); // grid is bipartite, natural order
        assert_eq!(phases, 1);
    }

    #[test]
    fn valid_coloring_across_variants_and_rank_counts() {
        let g = erdos_renyi(200, 800, 5);
        for comm in [CommVariant::Neighbor, CommVariant::Fiac, CommVariant::Fiab] {
            for parts in [2u32, 4, 8] {
                let p = hash_partition(g.num_vertices(), parts, 3);
                let cfg = ColoringConfig {
                    comm,
                    superstep_size: 16,
                    ..Default::default()
                };
                let (c, _, phases) = run_coloring(&g, &p, cfg);
                c.validate(&g)
                    .unwrap_or_else(|e| panic!("{comm:?}/{parts}: {e}"));
                assert!(
                    c.num_colors() <= g.max_degree() + 1,
                    "{comm:?}: too many colors"
                );
                assert!(phases <= 10, "{comm:?}: {phases} phases");
            }
        }
    }

    #[test]
    fn color_choices_all_valid() {
        let g = circuit_like(1500, 1);
        let p = block_partition(g.num_vertices(), 6);
        for choice in [
            ColorChoice::FirstFit,
            ColorChoice::StaggeredFirstFit,
            ColorChoice::LeastUsed,
        ] {
            let cfg = ColoringConfig {
                color_choice: choice,
                superstep_size: 50,
                ..Default::default()
            };
            let (c, _, _) = run_coloring(&g, &p, cfg);
            c.validate(&g).unwrap_or_else(|e| panic!("{choice:?}: {e}"));
        }
    }

    #[test]
    fn boundary_first_order_works() {
        let g = grid2d(12, 12);
        let p = grid2d_partition(12, 12, 2, 2);
        let cfg = ColoringConfig {
            order: LocalOrder::BoundaryFirst,
            superstep_size: 8,
            ..Default::default()
        };
        let (c, _, _) = run_coloring(&g, &p, cfg);
        c.validate(&g).unwrap();
    }

    #[test]
    fn neighbor_variant_sends_fewer_packets_than_fiac_and_fiab() {
        let g = grid2d(16, 16);
        let p = grid2d_partition(16, 16, 4, 2);
        let run = |comm| {
            let cfg = ColoringConfig {
                comm,
                superstep_size: 8,
                ..Default::default()
            };
            run_coloring(&g, &p, cfg).1
        };
        let new = run(CommVariant::Neighbor);
        let fiac = run(CommVariant::Fiac);
        let fiab = run(CommVariant::Fiab);
        // §4.2: NEW reduces both the number and the volume of messages.
        assert!(
            new.total_messages() < fiac.total_messages(),
            "NEW {} !< FIAC {}",
            new.total_messages(),
            fiac.total_messages()
        );
        assert!(
            new.total_bytes() < fiab.total_bytes(),
            "NEW {} bytes !< FIAB {}",
            new.total_bytes(),
            fiab.total_bytes()
        );
        assert!(fiac.total_bytes() < fiab.total_bytes());
    }

    #[test]
    fn conflicts_resolved_within_few_phases() {
        // Superstep size 1 with many ranks maximizes speculation; the
        // framework must still converge quickly (paper: ≤ 6 rounds).
        let g = complete(24);
        let p = hash_partition(24, 8, 2);
        let cfg = ColoringConfig {
            superstep_size: 1,
            ..Default::default()
        };
        let (c, _, phases) = run_coloring(&g, &p, cfg);
        c.validate(&g).unwrap();
        assert_eq!(c.num_colors(), 24);
        assert!(phases <= 24, "{phases} phases");
    }

    #[test]
    fn empty_rank_does_not_deadlock() {
        let g = grid2d(1, 3);
        let p = block_partition(3, 4); // rank 3 owns nothing
        let (c, _, _) = run_coloring(&g, &p, ColoringConfig::default());
        c.validate(&g).unwrap();
    }

    #[test]
    fn disconnected_graph() {
        let mut b = cmg_graph::GraphBuilder::new(8);
        b.add_edge_unweighted(0, 1);
        b.add_edge_unweighted(2, 3);
        let g = b.build();
        let p = hash_partition(8, 3, 1);
        let (c, _, _) = run_coloring(&g, &p, ColoringConfig::default());
        c.validate(&g).unwrap();
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn num_colors_close_to_sequential() {
        // §5.2: "the number of colors … in general remained nearly the
        // same as the number used by the underlying serial algorithm."
        let g = circuit_like(3000, 4);
        let seq_colors = crate::seq::greedy(&g, crate::seq::Ordering::Natural).num_colors();
        let p = block_partition(g.num_vertices(), 8);
        let (c, _, _) = run_coloring(&g, &p, ColoringConfig::default());
        c.validate(&g).unwrap();
        assert!(
            c.num_colors() <= seq_colors + 2,
            "dist {} vs seq {seq_colors}",
            c.num_colors()
        );
    }
}
