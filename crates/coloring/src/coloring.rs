//! The coloring result type and its verification.

use cmg_graph::{CsrGraph, VertexId};

/// Sentinel for "not yet colored".
pub const UNCOLORED: u32 = u32::MAX;

/// A (distance-1) vertex coloring: `color[v]` ∈ `0..num_colors`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<u32>,
}

impl Coloring {
    /// An all-uncolored assignment for `n` vertices.
    pub fn uncolored(n: usize) -> Self {
        Coloring {
            colors: vec![UNCOLORED; n],
        }
    }

    /// Wraps a color vector.
    pub fn from_colors(colors: Vec<u32>) -> Self {
        Coloring { colors }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.colors.len()
    }

    /// Color of `v` (or [`UNCOLORED`]).
    #[inline]
    pub fn color(&self, v: VertexId) -> u32 {
        self.colors[v as usize]
    }

    /// Sets the color of `v`.
    #[inline]
    pub fn set(&mut self, v: VertexId, c: u32) {
        self.colors[v as usize] = c;
    }

    /// `true` if every vertex has a color.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(|&c| c != UNCOLORED)
    }

    /// Number of distinct colors used (max color + 1 over colored
    /// vertices; 0 if nothing is colored).
    pub fn num_colors(&self) -> usize {
        self.colors
            .iter()
            .filter(|&&c| c != UNCOLORED)
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Raw color slice.
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// Counts conflict edges: edges whose endpoints share a color.
    pub fn count_conflicts(&self, g: &CsrGraph) -> usize {
        g.edges()
            .filter(|&(u, v, _)| {
                self.colors[u as usize] != UNCOLORED
                    && self.colors[u as usize] == self.colors[v as usize]
            })
            .count()
    }

    /// Validates a proper, complete distance-1 coloring of `g`.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        if self.colors.len() != g.num_vertices() {
            return Err("coloring size does not match graph".into());
        }
        for v in 0..g.num_vertices() as VertexId {
            if self.colors[v as usize] == UNCOLORED {
                return Err(format!("vertex {v} uncolored"));
            }
            for &u in g.neighbors(v) {
                if u > v && self.colors[u as usize] == self.colors[v as usize] {
                    return Err(format!(
                        "conflict: vertices {v} and {u} share color {}",
                        self.colors[v as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::path;

    #[test]
    fn proper_coloring_validates() {
        let g = path(4);
        let c = Coloring::from_colors(vec![0, 1, 0, 1]);
        c.validate(&g).unwrap();
        assert_eq!(c.num_colors(), 2);
        assert_eq!(c.count_conflicts(&g), 0);
        assert!(c.is_complete());
    }

    #[test]
    fn conflicts_detected() {
        let g = path(3);
        let c = Coloring::from_colors(vec![0, 0, 1]);
        assert_eq!(c.count_conflicts(&g), 1);
        assert!(c.validate(&g).is_err());
    }

    #[test]
    fn uncolored_fails_validation() {
        let g = path(2);
        let mut c = Coloring::uncolored(2);
        assert!(!c.is_complete());
        assert!(c.validate(&g).is_err());
        c.set(0, 0);
        c.set(1, 1);
        c.validate(&g).unwrap();
    }

    #[test]
    fn num_colors_ignores_uncolored() {
        let mut c = Coloring::uncolored(3);
        assert_eq!(c.num_colors(), 0);
        c.set(1, 4);
        assert_eq!(c.num_colors(), 5);
    }
}
