//! Jones–Plassmann maximal-independent-set coloring — the baseline the
//! speculative framework is compared against (§4.1: the framework "uses
//! provably fewer or at most as many rounds").
//!
//! Every vertex carries a random priority; in each round, a vertex whose
//! priority beats all of its *uncolored* neighbors colors itself first-fit
//! and announces the color. No conflicts ever occur, but the number of
//! rounds grows with the length of decreasing-priority paths, and every
//! round is a communication step.

use crate::coloring::{Coloring, UNCOLORED};
use crate::dist::ColorMsg;
use cmg_graph::util::vertex_priority;
use cmg_graph::VertexId;
use cmg_partition::DistGraph;
use cmg_runtime::{Rank, RankCtx, RankProgram, Status};

/// One rank's state of the Jones–Plassmann algorithm. Reuses
/// [`ColorMsg::Color`] as its only message.
pub struct JonesPlassmann {
    dg: DistGraph,
    color: Vec<u32>,
    priority: Vec<u64>,
    /// Owned vertices not yet colored.
    pending: Vec<u32>,
    forbidden: Vec<u64>,
    stamp: u64,
    dest_seen: Vec<u32>,
    dest_stamp: u32,
}

impl JonesPlassmann {
    /// Prepares the program for one rank.
    pub fn new(dg: DistGraph, seed: u64) -> Self {
        let n_total = dg.n_total();
        let priority = (0..n_total)
            .map(|i| vertex_priority(dg.global_ids[i] as u64, seed))
            .collect();
        let p = dg.num_ranks as usize;
        JonesPlassmann {
            color: vec![UNCOLORED; n_total],
            priority,
            pending: (0..dg.n_local as u32).collect(),
            forbidden: vec![u64::MAX; n_total + 2],
            stamp: 0,
            dest_seen: vec![u32::MAX; p],
            dest_stamp: 0,
            dg,
        }
    }

    /// Final colors of owned vertices as `(global id, color)`.
    pub fn local_colors(&self) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        (0..self.dg.n_local).map(|v| (self.dg.global_ids[v], self.color[v]))
    }

    /// Colors every pending vertex that is a local maximum among its
    /// uncolored neighbors.
    fn sweep(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        // One sweep per round: collect the colorable set first (so the
        // round behaves like the synchronous MIS step), then color it.
        let mut colorable = Vec::new();
        let mut still_pending = Vec::new();
        for &v in &self.pending {
            ctx.charge(self.dg.degree(v) as u64);
            let pv = (self.priority[v as usize], self.dg.global_ids[v as usize]);
            let dominated = self.dg.neighbors(v).iter().any(|&u| {
                self.color[u as usize] == UNCOLORED
                    && (self.priority[u as usize], self.dg.global_ids[u as usize]) > pv
            });
            if dominated {
                still_pending.push(v);
            } else {
                colorable.push(v);
            }
        }
        self.pending = still_pending;
        for v in colorable {
            self.stamp += 1;
            ctx.charge(self.dg.degree(v) as u64 + 1);
            for &u in self.dg.neighbors(v) {
                let c = self.color[u as usize];
                if c != UNCOLORED && (c as usize) < self.forbidden.len() {
                    self.forbidden[c as usize] = self.stamp;
                }
            }
            let mut c = 0u32;
            while (c as usize) < self.forbidden.len() && self.forbidden[c as usize] == self.stamp {
                c += 1;
            }
            self.color[v as usize] = c;
            // Announce to ranks owning a neighbor, once each.
            self.dest_stamp += 1;
            let msg = ColorMsg::Color {
                v: self.dg.global_ids[v as usize],
                color: c,
            };
            for i in self.dg.xadj[v as usize]..self.dg.xadj[v as usize + 1] {
                let u = self.dg.adj[i];
                if self.dg.is_ghost(u) {
                    let owner = self.dg.owner(u);
                    if self.dest_seen[owner as usize] != self.dest_stamp {
                        self.dest_seen[owner as usize] = self.dest_stamp;
                        ctx.send(owner, &msg);
                    }
                }
            }
        }
    }

    fn status(&self) -> Status {
        if self.pending.is_empty() {
            Status::Idle
        } else {
            Status::Active
        }
    }
}

impl RankProgram for JonesPlassmann {
    type Msg = ColorMsg;

    fn on_start(&mut self, ctx: &mut RankCtx<ColorMsg>) -> Status {
        self.sweep(ctx);
        self.status()
    }

    fn on_round(
        &mut self,
        inbox: &mut Vec<(Rank, Vec<ColorMsg>)>,
        ctx: &mut RankCtx<ColorMsg>,
    ) -> Status {
        for (_, msgs) in inbox.drain(..) {
            for m in msgs {
                ctx.charge(1);
                if let ColorMsg::Color { v, color } = m {
                    if let Some(&local) = self.dg.global_to_local.get(&v) {
                        self.color[local as usize] = color;
                    }
                }
            }
        }
        self.sweep(ctx);
        self.status()
    }
}

/// Assembles the global coloring from finished rank programs.
pub fn assemble_jp(programs: &[JonesPlassmann], num_vertices: usize) -> Coloring {
    let mut coloring = Coloring::uncolored(num_vertices);
    for p in programs {
        for (v, c) in p.local_colors() {
            coloring.set(v, c);
        }
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::{circuit_like, erdos_renyi, grid2d};
    use cmg_graph::CsrGraph;
    use cmg_partition::simple::{block_partition, hash_partition};
    use cmg_partition::Partition;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine};

    fn run_jp(g: &CsrGraph, partition: &Partition) -> (Coloring, u64) {
        let parts = DistGraph::build_all(g, partition);
        let programs: Vec<JonesPlassmann> = parts
            .into_iter()
            .map(|dg| JonesPlassmann::new(dg, 42))
            .collect();
        let cfg = EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        };
        let result = SimEngine::new(programs, cfg).run();
        assert!(!result.hit_round_cap);
        (
            assemble_jp(&result.programs, g.num_vertices()),
            result.stats.rounds,
        )
    }

    #[test]
    fn jp_colors_grid_validly() {
        let g = grid2d(10, 10);
        let (c, _) = run_jp(&g, &block_partition(100, 4));
        c.validate(&g).unwrap();
        assert!(c.num_colors() <= g.max_degree() + 1);
    }

    #[test]
    fn jp_on_random_graph_multiple_rank_counts() {
        let g = erdos_renyi(150, 600, 2);
        for parts in [1u32, 3, 8] {
            let (c, _) = run_jp(&g, &hash_partition(150, parts, 5));
            c.validate(&g).unwrap();
        }
    }

    #[test]
    fn jp_never_conflicts_mid_run() {
        // The invariant that distinguishes JP from speculation: colors are
        // final the moment they are assigned. Validity of the final result
        // plus determinism across rank counts is the observable effect.
        let g = circuit_like(800, 3);
        let (c1, _) = run_jp(&g, &Partition::single(g.num_vertices()));
        let (c2, _) = run_jp(&g, &hash_partition(g.num_vertices(), 6, 1));
        c1.validate(&g).unwrap();
        c2.validate(&g).unwrap();
        // JP's outcome depends only on priorities, not the partition.
        assert_eq!(c1, c2);
    }

    #[test]
    fn jp_rounds_grow_with_priority_paths() {
        let g = grid2d(30, 30);
        let (_, rounds) = run_jp(&g, &block_partition(900, 4));
        assert!(rounds > 3, "JP should need several rounds, got {rounds}");
    }
}
