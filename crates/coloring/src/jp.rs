//! Jones–Plassmann maximal-independent-set coloring — the baseline the
//! speculative framework is compared against (§4.1: the framework "uses
//! provably fewer or at most as many rounds").
//!
//! Every vertex carries a random priority; in each round, a vertex whose
//! priority beats all of its *uncolored* neighbors colors itself first-fit
//! and announces the color. No conflicts ever occur, but the number of
//! rounds grows with the length of decreasing-priority paths, and every
//! round is a communication step.

use crate::coloring::{Coloring, UNCOLORED};
use crate::dist::ColorMsg;
use cmg_graph::util::vertex_priority;
use cmg_graph::VertexId;
use cmg_partition::DistGraph;
use cmg_runtime::{wire_codec, ProgramSnapshot, Rank, RankCtx, RankProgram, Status};

wire_codec! {
    /// Snapshot records of [`JonesPlassmann`]: assigned colors (owned
    /// and ghost) in dense 8-wide chunks, and the still-pending owned
    /// vertices in list order. Priorities, the forbidden-stamp scratch,
    /// and the per-destination dedup table are rebuilt from the graph +
    /// seed on restore.
    ///
    /// Colors travel chunked rather than one-record-per-vertex because
    /// the net engine serializes a snapshot at every checkpoint edge:
    /// a chunk amortizes the tag byte and base index over eight
    /// entries (~4.6 bytes/vertex against 9), and chunks that are
    /// entirely [`UNCOLORED`] are simply not emitted.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum JpSnap {
        /// Eight consecutive color slots starting at local index
        /// `base` (8-aligned). [`UNCOLORED`] slots are literal; a
        /// trailing chunk past the end of the color array pads with
        /// [`UNCOLORED`].
        0 => Colors {
            /// First local index covered (multiple of 8).
            base: u32,
            /// Color of `base + 0`.
            c0: u32,
            /// Color of `base + 1`.
            c1: u32,
            /// Color of `base + 2`.
            c2: u32,
            /// Color of `base + 3`.
            c3: u32,
            /// Color of `base + 4`.
            c4: u32,
            /// Color of `base + 5`.
            c5: u32,
            /// Color of `base + 6`.
            c6: u32,
            /// Color of `base + 7`.
            c7: u32,
        },
        /// An owned vertex not yet colored, in list order.
        1 => Pending {
            /// Pending vertex (local index).
            v: u32,
        },
    }
}

/// One rank's snapshot in its natural shape: the full color array
/// (owned + ghost) and the pending list, captured as two wholesale
/// `Vec` clones (O(n) memcpy) instead of a filtered record build.
///
/// The wire format is exactly the [`JpSnap`] record stream — `Colors`
/// chunks in ascending base order (all-[`UNCOLORED`] chunks omitted),
/// then `Pending` records in list order — but `encode_bytes` is
/// overridden with a bulk writer that appends one pre-assembled slice
/// per record. On the net engine a checkpoint cadence serializes this
/// at every k-th round edge, and the per-field `BufMut` puts of the
/// generic path were the dominant cost of the whole checkpoint; the
/// bulk path is several times cheaper while producing byte-identical
/// output (pinned by a test below).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JpSnapshot {
    /// Colors by local index (owned + ghost); `UNCOLORED` entries stay
    /// off the wire (in units of whole chunks).
    pub colors: Vec<u32>,
    /// Still-pending owned vertices, in list order.
    pub pending: Vec<u32>,
}

/// Vertices per [`JpSnap::Colors`] chunk.
const CHUNK: usize = 8;

/// The eight color slots of the chunk starting at `base`, padding past
/// the end of the array with [`UNCOLORED`].
fn chunk_at(colors: &[u32], base: usize) -> [u32; CHUNK] {
    let mut c = [UNCOLORED; CHUNK];
    for (k, slot) in c.iter_mut().enumerate() {
        if let Some(&v) = colors.get(base + k) {
            *slot = v;
        }
    }
    c
}

impl ProgramSnapshot for JpSnapshot {
    type Record = JpSnap;

    fn into_records(self) -> Vec<JpSnap> {
        let mut recs = Vec::with_capacity(self.colors.len() / CHUNK + self.pending.len() + 1);
        for base in (0..self.colors.len()).step_by(CHUNK) {
            let [c0, c1, c2, c3, c4, c5, c6, c7] = chunk_at(&self.colors, base);
            if [c0, c1, c2, c3, c4, c5, c6, c7] == [UNCOLORED; CHUNK] {
                continue;
            }
            recs.push(JpSnap::Colors {
                base: base as u32,
                c0,
                c1,
                c2,
                c3,
                c4,
                c5,
                c6,
                c7,
            });
        }
        for &v in &self.pending {
            recs.push(JpSnap::Pending { v });
        }
        recs
    }

    fn from_records(records: Vec<JpSnap>) -> Option<Self> {
        // The color array is rebuilt only up to the last emitted chunk;
        // `restore` applies entries positionally onto a fresh program,
        // so trailing `UNCOLORED` entries need no records and padded
        // chunk tails are harmless.
        let n = records
            .iter()
            .filter_map(|r| match r {
                JpSnap::Colors { base, .. } => Some(*base as usize + CHUNK),
                JpSnap::Pending { .. } => None,
            })
            .max()
            .unwrap_or(0);
        let mut colors = vec![UNCOLORED; n];
        let mut pending = Vec::new();
        for r in records {
            match r {
                JpSnap::Colors {
                    base,
                    c0,
                    c1,
                    c2,
                    c3,
                    c4,
                    c5,
                    c6,
                    c7,
                } => {
                    let base = base as usize;
                    for (k, v) in [c0, c1, c2, c3, c4, c5, c6, c7].into_iter().enumerate() {
                        if let Some(slot) = colors.get_mut(base + k) {
                            *slot = v;
                        }
                    }
                }
                JpSnap::Pending { v } => pending.push(v),
            }
        }
        Some(JpSnapshot { colors, pending })
    }

    fn encode_into(self, out: &mut Vec<u8>) {
        encode_jp_state(&self.colors, &self.pending, out);
    }
}

/// Bulk snapshot writer shared by [`JpSnapshot::encode_into`] and the
/// live-program hot path ([`RankProgram::encode_snapshot_into`]): a
/// single pass over the color array, one slice append per record,
/// byte-identical to the generic per-field codec path (tag byte +
/// little-endian fields). Reserves the worst case (every chunk
/// emitted) — spare capacity is free here, the buffer goes to the wire
/// as-is and is never shrunk into `Bytes`.
fn encode_jp_state(colors: &[u32], pending: &[u32], out: &mut Vec<u8>) {
    out.reserve((colors.len() / CHUNK + 1) * 37 + pending.len() * 5);
    for (i, ch) in colors.chunks(CHUNK).enumerate() {
        if ch.iter().all(|&c| c == UNCOLORED) {
            continue;
        }
        // 0xFF-filled so a trailing partial chunk's missing slots read
        // back as UNCOLORED (= u32::MAX) without explicit padding.
        let mut rec = [0xFFu8; 37];
        rec[0] = 0;
        rec[1..5].copy_from_slice(&((i * CHUNK) as u32).to_le_bytes());
        for (k, &c) in ch.iter().enumerate() {
            rec[5 + 4 * k..9 + 4 * k].copy_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&rec);
    }
    for &v in pending {
        let b = v.to_le_bytes();
        out.extend_from_slice(&[1, b[0], b[1], b[2], b[3]]);
    }
}

/// One rank's state of the Jones–Plassmann algorithm. Reuses
/// [`ColorMsg::Color`] as its only message.
pub struct JonesPlassmann {
    dg: DistGraph,
    color: Vec<u32>,
    priority: Vec<u64>,
    /// Owned vertices not yet colored.
    pending: Vec<u32>,
    forbidden: Vec<u64>,
    stamp: u64,
    dest_seen: Vec<u32>,
    dest_stamp: u32,
    /// Priority seed, kept so restore can rebuild `priority`.
    seed: u64,
}

impl JonesPlassmann {
    /// Prepares the program for one rank.
    pub fn new(dg: DistGraph, seed: u64) -> Self {
        let n_total = dg.n_total();
        let priority = (0..n_total)
            .map(|i| vertex_priority(dg.global_ids[i] as u64, seed))
            .collect();
        let p = dg.num_ranks as usize;
        JonesPlassmann {
            color: vec![UNCOLORED; n_total],
            priority,
            pending: (0..dg.n_local as u32).collect(),
            forbidden: vec![u64::MAX; n_total + 2],
            stamp: 0,
            dest_seen: vec![u32::MAX; p],
            dest_stamp: 0,
            seed,
            dg,
        }
    }

    /// Final colors of owned vertices as `(global id, color)`.
    pub fn local_colors(&self) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        (0..self.dg.n_local).map(|v| (self.dg.global_ids[v], self.color[v]))
    }

    /// Colors every pending vertex that is a local maximum among its
    /// uncolored neighbors.
    fn sweep(&mut self, ctx: &mut RankCtx<ColorMsg>) {
        // One sweep per round: collect the colorable set first (so the
        // round behaves like the synchronous MIS step), then color it.
        let mut colorable = Vec::new();
        let mut still_pending = Vec::new();
        for &v in &self.pending {
            ctx.charge(self.dg.degree(v) as u64);
            let pv = (self.priority[v as usize], self.dg.global_ids[v as usize]);
            let dominated = self.dg.neighbors(v).iter().any(|&u| {
                self.color[u as usize] == UNCOLORED
                    && (self.priority[u as usize], self.dg.global_ids[u as usize]) > pv
            });
            if dominated {
                still_pending.push(v);
            } else {
                colorable.push(v);
            }
        }
        self.pending = still_pending;
        for v in colorable {
            self.stamp += 1;
            ctx.charge(self.dg.degree(v) as u64 + 1);
            for &u in self.dg.neighbors(v) {
                let c = self.color[u as usize];
                if c != UNCOLORED && (c as usize) < self.forbidden.len() {
                    self.forbidden[c as usize] = self.stamp;
                }
            }
            let mut c = 0u32;
            while (c as usize) < self.forbidden.len() && self.forbidden[c as usize] == self.stamp {
                c += 1;
            }
            self.color[v as usize] = c;
            // Announce to ranks owning a neighbor, once each.
            self.dest_stamp += 1;
            let msg = ColorMsg::Color {
                v: self.dg.global_ids[v as usize],
                color: c,
            };
            for i in self.dg.xadj[v as usize]..self.dg.xadj[v as usize + 1] {
                let u = self.dg.adj[i];
                if self.dg.is_ghost(u) {
                    let owner = self.dg.owner(u);
                    if self.dest_seen[owner as usize] != self.dest_stamp {
                        self.dest_seen[owner as usize] = self.dest_stamp;
                        ctx.send(owner, &msg);
                    }
                }
            }
        }
    }

    fn status(&self) -> Status {
        if self.pending.is_empty() {
            Status::Idle
        } else {
            Status::Active
        }
    }
}

impl RankProgram for JonesPlassmann {
    type Msg = ColorMsg;
    type Snapshot = JpSnapshot;
    type Meta = (DistGraph, u64);

    fn snapshot(&self) -> JpSnapshot {
        JpSnapshot {
            colors: self.color.clone(),
            pending: self.pending.clone(),
        }
    }

    fn encode_snapshot_into(&self, out: &mut Vec<u8>) {
        // Hot path: encode straight out of the live color and pending
        // buffers, skipping the snapshot clone the default would make.
        encode_jp_state(&self.color, &self.pending, out);
    }

    fn restore(meta: (DistGraph, u64), snap: JpSnapshot) -> Self {
        let (dg, seed) = meta;
        let mut p = JonesPlassmann::new(dg, seed);
        // Applied positionally: a decoded snapshot's color array may be
        // truncated after the last colored index, or chunk-padded past
        // the vertex count (padding is UNCOLORED, excess is ignored).
        for (idx, &color) in snap.colors.iter().enumerate() {
            if color != UNCOLORED {
                if let Some(slot) = p.color.get_mut(idx) {
                    *slot = color;
                }
            }
        }
        p.pending = snap.pending;
        p
    }

    fn meta(&self) -> (DistGraph, u64) {
        (self.dg.clone(), self.seed)
    }

    fn on_start(&mut self, ctx: &mut RankCtx<ColorMsg>) -> Status {
        self.sweep(ctx);
        self.status()
    }

    fn on_round(
        &mut self,
        inbox: &mut Vec<(Rank, Vec<ColorMsg>)>,
        ctx: &mut RankCtx<ColorMsg>,
    ) -> Status {
        for (_, msgs) in inbox.drain(..) {
            for m in msgs {
                ctx.charge(1);
                if let ColorMsg::Color { v, color } = m {
                    if let Some(&local) = self.dg.global_to_local.get(&v) {
                        self.color[local as usize] = color;
                    }
                }
            }
        }
        self.sweep(ctx);
        self.status()
    }
}

/// Assembles the global coloring from finished rank programs.
pub fn assemble_jp(programs: &[JonesPlassmann], num_vertices: usize) -> Coloring {
    let mut coloring = Coloring::uncolored(num_vertices);
    for p in programs {
        for (v, c) in p.local_colors() {
            coloring.set(v, c);
        }
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::{circuit_like, erdos_renyi, grid2d};
    use cmg_graph::CsrGraph;
    use cmg_partition::simple::{block_partition, hash_partition};
    use cmg_partition::Partition;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine};

    fn run_jp(g: &CsrGraph, partition: &Partition) -> (Coloring, u64) {
        let parts = DistGraph::build_all(g, partition);
        let programs: Vec<JonesPlassmann> = parts
            .into_iter()
            .map(|dg| JonesPlassmann::new(dg, 42))
            .collect();
        let cfg = EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        };
        let result = SimEngine::new(programs, cfg).run();
        assert!(!result.hit_round_cap);
        (
            assemble_jp(&result.programs, g.num_vertices()),
            result.stats.rounds,
        )
    }

    #[test]
    fn jp_colors_grid_validly() {
        let g = grid2d(10, 10);
        let (c, _) = run_jp(&g, &block_partition(100, 4));
        c.validate(&g).unwrap();
        assert!(c.num_colors() <= g.max_degree() + 1);
    }

    #[test]
    fn jp_on_random_graph_multiple_rank_counts() {
        let g = erdos_renyi(150, 600, 2);
        for parts in [1u32, 3, 8] {
            let (c, _) = run_jp(&g, &hash_partition(150, parts, 5));
            c.validate(&g).unwrap();
        }
    }

    #[test]
    fn jp_never_conflicts_mid_run() {
        // The invariant that distinguishes JP from speculation: colors are
        // final the moment they are assigned. Validity of the final result
        // plus determinism across rank counts is the observable effect.
        let g = circuit_like(800, 3);
        let (c1, _) = run_jp(&g, &Partition::single(g.num_vertices()));
        let (c2, _) = run_jp(&g, &hash_partition(g.num_vertices(), 6, 1));
        c1.validate(&g).unwrap();
        c2.validate(&g).unwrap();
        // JP's outcome depends only on priorities, not the partition.
        assert_eq!(c1, c2);
    }

    #[test]
    fn jp_rounds_grow_with_priority_paths() {
        let g = grid2d(30, 30);
        let (_, rounds) = run_jp(&g, &block_partition(900, 4));
        assert!(rounds > 3, "JP should need several rounds, got {rounds}");
    }

    #[test]
    fn bulk_snapshot_encoding_matches_the_generic_record_path() {
        use crate::coloring::UNCOLORED;
        use crate::jp::JpSnapshot;
        use cmg_runtime::ProgramSnapshot;

        // A mid-run-shaped snapshot: colored, uncolored, and pending
        // entries, a fully-uncolored chunk (which must vanish from the
        // wire), and a ragged tail shorter than a chunk.
        let mut colors = vec![UNCOLORED; 19];
        for (i, c) in [(0, 2u32), (2, 0), (5, 7), (6, 1), (17, 3)] {
            colors[i] = c;
        }
        // Chunk [8..16) stays entirely uncolored.
        let snap = JpSnapshot {
            colors,
            pending: vec![1, 3, 4, 7],
        };
        let bulk = snap.clone().encode_bytes();
        // The reference stream: the same records through the generic
        // per-field encoder every other wire_codec type uses.
        let generic: Vec<_> = snap.clone().into_records();
        assert_eq!(generic.len(), 2 + 4, "two chunks plus four pending");
        let reference = generic.encode_bytes();
        assert_eq!(bulk, reference, "bulk encoder drifted from the wire format");

        // And the round trip restores the same logical snapshot (the
        // decoded color array pads to whole chunks with UNCOLORED).
        let back = JpSnapshot::decode_bytes(bulk).expect("decodes");
        assert_eq!(back.pending, snap.pending);
        assert_eq!(back.colors.len(), 24);
        assert_eq!(back.colors[..19], snap.colors[..]);
        assert!(back.colors[19..].iter().all(|&c| c == UNCOLORED));
    }
}
