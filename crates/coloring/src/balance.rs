//! Color balancing: evening out color-class sizes after a greedy coloring.
//!
//! First-fit colorings skew heavily toward the small colors, which is bad
//! for the paper's downstream uses that parallelize *per color class*
//! (e.g. "task scheduling and concurrency discovery in parallel
//! computing", §1 refs [12], [24] — each class is a parallel step whose
//! span is the largest class). A balancing pass moves vertices from
//! over-full classes into permissible under-full ones without changing
//! the number of colors or breaking properness.

use crate::coloring::{Coloring, UNCOLORED};
use cmg_graph::{CsrGraph, VertexId};

/// Size of each color class.
pub fn class_sizes(coloring: &Coloring) -> Vec<usize> {
    let mut sizes = vec![0usize; coloring.num_colors()];
    for &c in coloring.colors() {
        if c != UNCOLORED {
            sizes[c as usize] += 1;
        }
    }
    sizes
}

/// Max class size ÷ mean class size (1.0 = perfectly balanced).
pub fn balance_ratio(coloring: &Coloring) -> f64 {
    let sizes = class_sizes(coloring);
    if sizes.is_empty() {
        return 1.0;
    }
    let max = sizes.iter().copied().max().unwrap_or(0) as f64;
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Greedy balancing: repeatedly moves vertices from the largest classes
/// into the smallest permissible classes ("least-used" re-coloring, one
/// pass per `passes`). Preserves properness and never increases the color
/// count. Returns the number of vertices moved.
pub fn balance(coloring: &mut Coloring, g: &CsrGraph, passes: usize) -> usize {
    let k = coloring.num_colors();
    if k <= 1 {
        return 0;
    }
    let mut sizes = class_sizes(coloring);
    let mut moved = 0usize;
    let mut forbidden: Vec<u64> = vec![u64::MAX; k];
    let mut stamp = 0u64;
    for _ in 0..passes {
        let mut any = false;
        for v in 0..g.num_vertices() as VertexId {
            let cv = coloring.color(v);
            if cv == UNCOLORED {
                continue;
            }
            stamp += 1;
            for &u in g.neighbors(v) {
                let cu = coloring.color(u);
                if cu != UNCOLORED && (cu as usize) < k {
                    forbidden[cu as usize] = stamp;
                }
            }
            // Smallest permissible class strictly smaller than v's own
            // (with a margin of 1 to guarantee termination).
            let mut best: Option<(usize, u32)> = None;
            for (c, &size) in sizes.iter().enumerate() {
                if c as u32 != cv
                    && forbidden[c] != stamp
                    && size + 1 < sizes[cv as usize]
                    && best.is_none_or(|(bs, _)| size < bs)
                {
                    best = Some((size, c as u32));
                }
            }
            if let Some((_, c)) = best {
                sizes[cv as usize] -= 1;
                sizes[c as usize] += 1;
                coloring.set(v, c);
                moved += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{greedy, Ordering};
    use cmg_graph::generators::{erdos_renyi, grid2d, star};

    #[test]
    fn balancing_preserves_properness_and_color_count() {
        let g = erdos_renyi(300, 1200, 3);
        let mut c = greedy(&g, Ordering::Natural);
        let colors_before = c.num_colors();
        let ratio_before = balance_ratio(&c);
        let moved = balance(&mut c, &g, 4);
        c.validate(&g).unwrap();
        assert!(c.num_colors() <= colors_before);
        let ratio_after = balance_ratio(&c);
        assert!(
            ratio_after <= ratio_before,
            "ratio got worse: {ratio_before} -> {ratio_after}"
        );
        assert!(
            moved > 0,
            "first-fit on ER graphs is skewed; expected moves"
        );
    }

    #[test]
    fn grid_two_coloring_balances_to_near_half() {
        // Natural-order grid coloring is already balanced; balance() must
        // be a no-op-ish and keep it proper.
        let g = grid2d(10, 10);
        let mut c = greedy(&g, Ordering::Natural);
        balance(&mut c, &g, 2);
        c.validate(&g).unwrap();
        let sizes = class_sizes(&c);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(balance_ratio(&c) < 1.1);
    }

    #[test]
    fn star_cannot_balance_below_structure() {
        // Star: hub forms its own class; leaves all share one class. No
        // move is permissible (leaves conflict with nothing but the hub,
        // hub conflicts with everything).
        let g = star(9);
        let mut c = greedy(&g, Ordering::Natural);
        let moved = balance(&mut c, &g, 3);
        c.validate(&g).unwrap();
        assert_eq!(moved, 0);
    }

    #[test]
    fn empty_coloring_is_fine() {
        let g = cmg_graph::CsrGraph::empty(0);
        let mut c = Coloring::uncolored(0);
        assert_eq!(balance(&mut c, &g, 3), 0);
        assert_eq!(balance_ratio(&c), 1.0);
    }
}
