//! The resident service state and its warm-start repair loop
//! (DESIGN.md §13).
//!
//! [`ServeState`] is what stays alive between requests: the mutable
//! edge set, the fixed partition, and the currently served matching
//! and coloring. Absorbing a mutation batch is a three-step pipeline:
//!
//! 1. **Apply** — the batch lands in the [`MutableGraph`]'s adjacency
//!    index, O(batch). No CSR is packed: the repair kernels read the
//!    mutable graph directly through
//!    [`NeighborView`](cmg_graph::NeighborView).
//! 2. **Invalidate** — [`invalidate`] (matching) and
//!    [`invalidate_colors`] (coloring) compute the retained state:
//!    which decisions the mutations can possibly have broken, and
//!    nothing more.
//! 3. **Repair** — the sequential frontier finishers
//!    ([`cmg_matching::repair_frontier`],
//!    [`cmg_coloring::repair_frontier_colors`]) re-decide exactly the
//!    dirty frontier, O(frontier). Clean decisions are never
//!    revisited, and nothing on this path is O(V + E) — that is what
//!    buys the order-of-magnitude repair-vs-recompute gap the serve
//!    bench demands. (The equivalent *distributed* warm path — each
//!    rank reseeded via its [`WarmStart`](cmg_runtime::WarmStart)
//!    impl, engine rerun over the frontier — remains the multi-rank
//!    story and computes the same matching fixpoint.)
//!
//! Past a configurable dirtiness threshold the warm start stops
//! paying (the frontier *is* the graph) and the batch falls through
//! to a full recompute: CSR repacked, partition rebuilt, from-scratch
//! engine pass. With a [`NetSession`] attached, those cold runs
//! execute on the resident multi-process fleet — composing with the
//! supervisor's checkpoint recovery — while warm repairs always run
//! in-process, where the tiny frontier finishes before a fleet
//! round-trip would even start.
//!
//! **Consistency bar** (DESIGN.md §13): after any mutation stream the
//! served matching is a valid locally-dominant matching of the final
//! graph (½-approx certificate) and the served coloring is proper.
//! With distinct weights the repaired matching equals the
//! from-scratch one bit-for-bit; the repaired coloring is proper but
//! may use a different palette than a cold run would — bit-identity
//! across the repair/recompute boundary is explicitly relaxed.

use crate::protocol::RepairAck;
use cmg_coloring::{
    assemble_coloring, invalidate_colors, repair_frontier_colors, Coloring, ColoringConfig,
    DistColoring,
};
use cmg_graph::{ApplyOutcome, CsrGraph, MutableGraph, MutationBatch, VertexId, NO_VERTEX};
use cmg_matching::repair::{invalidate, repair_frontier};
use cmg_matching::{assemble_matching, DistMatching, Matching};
use cmg_net::{NetConfig, NetError, NetSession, NetTask};
use cmg_partition::simple::block_partition;
use cmg_partition::{DistGraph, Partition};
use cmg_runtime::{CostModel, EngineConfig, SimEngine};

/// How the service absorbs mutations and runs recomputes.
pub struct ServeConfig {
    /// Ranks the graph is partitioned over.
    pub ranks: u32,
    /// Coloring framework configuration (its `seed` also drives the
    /// conflict-loser rule the repair's invalidation reuses).
    pub coloring: ColoringConfig,
    /// Fraction of vertices dirty (matching or coloring) above which
    /// a batch is absorbed by full recompute instead of repair.
    pub recompute_threshold: f64,
    /// `Some` = run cold passes (initial load, threshold recomputes)
    /// on a resident cmg-net worker fleet with this configuration;
    /// `None` = everything in-process.
    pub net: Option<NetConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ranks: 4,
            coloring: ColoringConfig::default(),
            recompute_threshold: 0.25,
            net: None,
        }
    }
}

/// How one batch was absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairMode {
    /// Warm-start repair: only the dirty frontier re-decided.
    Repair,
    /// Full recompute: dirtiness crossed the threshold.
    Recompute,
}

/// Per-batch repair report (the `MutateAck` payload's source).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairReport {
    /// Repair or full recompute.
    pub mode: RepairMode,
    /// What the batch changed in the edge set.
    pub applied: ApplyOutcome,
    /// Vertices the matching pass re-decided.
    pub dirty_matching: usize,
    /// Vertices the coloring pass re-decided.
    pub dirty_coloring: usize,
    /// Engine rounds of the matching pass. Warm repairs run the
    /// sequential frontier kernel, which has no rounds (0); recomputes
    /// report the cold engine's round count.
    pub match_rounds: u64,
    /// Engine rounds of the coloring pass (same convention).
    pub color_rounds: u64,
}

impl RepairReport {
    /// The wire ack for this report. `micros` is measured by the
    /// server around the whole absorb (apply through rerun).
    pub fn ack(&self, micros: u64) -> RepairAck {
        RepairAck::Done {
            mode: match self.mode {
                RepairMode::Repair => 0,
                RepairMode::Recompute => 1,
            },
            dirty_matching: self.dirty_matching as u64,
            dirty_coloring: self.dirty_coloring as u64,
            match_rounds: self.match_rounds,
            color_rounds: self.color_rounds,
            micros,
        }
    }
}

/// The state a serving process keeps resident between requests.
pub struct ServeState {
    cfg: ServeConfig,
    mg: MutableGraph,
    /// Lazily rebuilt CSR cache: `None` after mutations until a
    /// recompute (or explicit [`ServeState::graph`] call) repacks it.
    /// The warm repair path never touches it.
    csr: Option<CsrGraph>,
    part: Partition,
    mate: Vec<VertexId>,
    colors: Vec<u32>,
    /// Resident worker fleet for cold passes (net mode only).
    session: Option<NetSession>,
    /// Lifetime counters, served by the Summary query.
    pub batches: u64,
    /// Batches absorbed by warm-start repair.
    pub repairs: u64,
    /// Batches absorbed by full recompute.
    pub recomputes: u64,
    /// Fleet passes that failed unrecoverably and fell back to the
    /// in-process engine (net mode only; the fleet relaunches on its
    /// next pass).
    pub fleet_failures: u64,
    /// The most recent fleet failure's typed diagnosis, until taken.
    last_net_error: Option<NetError>,
}

impl ServeState {
    /// Loads `g0`, partitions it once, and computes the initial
    /// matching and coloring cold.
    pub fn new(g0: &CsrGraph, cfg: ServeConfig) -> Result<ServeState, NetError> {
        let part = block_partition(g0.num_vertices(), cfg.ranks);
        let session = cfg
            .net
            .as_ref()
            .map(|net_cfg| NetSession::open(DistGraph::build_all(g0, &part), net_cfg.clone()));
        let mut state = ServeState {
            mg: MutableGraph::from_csr(g0),
            csr: Some(g0.clone()),
            part,
            mate: Vec::new(),
            colors: Vec::new(),
            session,
            cfg,
            batches: 0,
            repairs: 0,
            recomputes: 0,
            fleet_failures: 0,
            last_net_error: None,
        };
        // The initial load must fail loudly: a fleet that cannot even
        // launch is a configuration error, not a transient.
        state.recompute()?;
        Ok(state)
    }

    /// The graph currently served, in CSR form. Repacks the mutable
    /// edge set on first call after a mutation (O(n + m)) and caches —
    /// the warm repair path never needs it, so a repair-heavy stream
    /// pays this only when someone actually asks for the packed graph.
    pub fn graph(&mut self) -> &CsrGraph {
        let mg = &self.mg;
        self.csr.get_or_insert_with(|| mg.rebuild())
    }

    /// Number of vertices (fixed for the service lifetime).
    pub fn num_vertices(&self) -> usize {
        self.mg.num_vertices()
    }

    /// Number of undirected edges currently present.
    pub fn num_edges(&self) -> usize {
        self.mg.num_edges()
    }

    /// Total weight of the served matching on the current graph.
    pub fn matched_weight(&self) -> f64 {
        let mut total = 0.0;
        for (u, &m) in self.mate.iter().enumerate() {
            if m != NO_VERTEX && (u as VertexId) < m {
                total += self.mg.edge_weight(u as VertexId, m).unwrap_or(0.0);
            }
        }
        total
    }

    /// The matching currently served.
    pub fn matching(&self) -> Matching {
        Matching::from_mates(self.mate.clone())
    }

    /// The coloring currently served.
    pub fn coloring(&self) -> Coloring {
        Coloring::from_colors(self.colors.clone())
    }

    /// Current mate of `v` (`NO_VERTEX` = unmatched).
    pub fn mate_of(&self, v: VertexId) -> VertexId {
        self.mate[v as usize]
    }

    /// Current color of `v`.
    pub fn color_of(&self, v: VertexId) -> u32 {
        self.colors[v as usize]
    }

    /// Whether cold passes run on a resident worker fleet.
    pub fn uses_fleet(&self) -> bool {
        self.session.is_some()
    }

    /// Absorbs one mutation batch: apply, invalidate, repair (or
    /// recompute past the dirtiness threshold). On a rejected batch
    /// (`Err` = invalid mutation) the graph and served results are
    /// untouched.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<RepairReport, String> {
        let applied = self.mg.apply(batch)?;
        self.csr = None; // packed cache is stale from here
        self.batches += 1;

        // Invalidation reads the mutable adjacency directly — no CSR
        // repack anywhere on the warm path.
        let retained_m = invalidate(&self.mg, &self.mate, batch);
        let retained_c = invalidate_colors(&self.mg, &self.colors, batch, self.cfg.coloring.seed);
        let dirty_matching = retained_m.active_count();
        let dirty_coloring = retained_c.dirty_count();
        let n = self.mg.num_vertices().max(1);
        let dirtiness = dirty_matching.max(dirty_coloring) as f64 / n as f64;

        if dirtiness > self.cfg.recompute_threshold {
            self.recomputes += 1;
            // A fleet failure mid-serve degrades, it does not wedge:
            // the in-process fallback restores consistency, the typed
            // diagnosis is retained (`take_fleet_error`), and the
            // session relaunches a fresh fleet on its next pass.
            if let Err(e) = self.recompute() {
                self.fleet_failures += 1;
                self.last_net_error = Some(e);
                self.recompute_local();
            }
            return Ok(RepairReport {
                mode: RepairMode::Recompute,
                applied,
                dirty_matching,
                dirty_coloring,
                match_rounds: 0,
                color_rounds: 0,
            });
        }

        self.repairs += 1;
        // Sequential frontier finishers: O(frontier) work total, same
        // matching fixpoint as the distributed warm run (see the
        // kernels' equivalence notes and tests).
        self.mate = repair_frontier(&self.mg, &retained_m);
        self.colors = repair_frontier_colors(&self.mg, &retained_c, self.cfg.coloring.seed);

        Ok(RepairReport {
            mode: RepairMode::Repair,
            applied,
            dirty_matching,
            dirty_coloring,
            match_rounds: 0,
            color_rounds: 0,
        })
    }

    /// From-scratch matching + coloring on the current graph: on the
    /// resident fleet in net mode, in-process otherwise.
    fn recompute(&mut self) -> Result<(), NetError> {
        if self.session.is_none() {
            self.recompute_local();
            return Ok(());
        }
        let g = self.graph().clone();
        let parts = DistGraph::build_all(&g, &self.part);
        if let Some(session) = self.session.as_mut() {
            session.set_parts(parts)?;
            self.mate = session.submit_matching(NetTask::Matching)?.mates().to_vec();
            self.colors = session
                .submit_coloring(NetTask::Coloring(self.cfg.coloring))?
                .colors()
                .to_vec();
        }
        Ok(())
    }

    /// In-process from-scratch pass (also the net mode's fallback when
    /// a fleet pass fails unrecoverably).
    fn recompute_local(&mut self) {
        let g = self.graph().clone();
        let parts = DistGraph::build_all(&g, &self.part);
        let programs: Vec<DistMatching> = parts.iter().cloned().map(DistMatching::new).collect();
        let result = SimEngine::new(programs, Self::engine_cfg()).run();
        self.mate = assemble_matching(&result.programs, g.num_vertices())
            .mates()
            .to_vec();
        let programs: Vec<DistColoring> = parts
            .into_iter()
            .map(|dg| DistColoring::new(dg, self.cfg.coloring))
            .collect();
        let result = SimEngine::new(programs, Self::engine_cfg()).run();
        self.colors = assemble_coloring(&result.programs, g.num_vertices())
            .colors()
            .to_vec();
    }

    /// Takes the most recent fleet failure's typed diagnosis, if any
    /// (net mode). The serving layer reports it; the service itself
    /// already fell back and stayed consistent.
    pub fn take_fleet_error(&mut self) -> Option<NetError> {
        self.last_net_error.take()
    }

    /// Shuts a resident fleet down gracefully (no-op in-process).
    pub fn close(&mut self) -> Result<(), NetError> {
        match self.session.as_mut() {
            Some(session) => session.close(),
            None => Ok(()),
        }
    }

    fn engine_cfg() -> EngineConfig {
        EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        }
    }
}
