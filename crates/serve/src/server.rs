//! The serving loop: a Unix-domain listener speaking the framed v5
//! session protocol over a resident [`ServeState`].
//!
//! One client session at a time (requests within a session are
//! strictly ordered — a query observes every batch acknowledged
//! before it, which is the consistency contract DESIGN.md §13
//! promises). [`Ctrl::SessionEnd`] closes the connection and the
//! state lives on for the next client; [`Ctrl::Shutdown`] stops the
//! server and returns the run's latency summary.
//!
//! Latency accounting: every `MutateBatch` is timed around the whole
//! absorb (decode through repair) and recorded in a log-scaled
//! histogram, likewise every `Query`; the summary reports p50/p99 in
//! microseconds and feeds `BENCH_serve.json`.

use crate::protocol::{batch_of, RepairAck, ServeOp, ServeQuery, ServeReply};
use crate::state::{RepairReport, ServeConfig, ServeState};
use bytes::{Bytes, BytesMut};
use cmg_graph::CsrGraph;
use cmg_net::frame::{read_frame, write_frame};
use cmg_net::{Ctrl, Frame, NetError};
use cmg_obs::metrics::LogHistogram;
use cmg_obs::Json;
use cmg_runtime::message::decode_all;
use cmg_runtime::WireMessage;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Instant;

/// Server-side configuration: where to listen and how to serve.
pub struct ServerConfig {
    /// Unix-domain socket path to bind (removed first if stale).
    pub socket: PathBuf,
    /// The resident state's configuration.
    pub serve: ServeConfig,
}

/// What a finished serving run measured.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Client sessions served.
    pub sessions: u64,
    /// Mutation batches absorbed.
    pub batches: u64,
    /// ... by warm-start repair.
    pub repairs: u64,
    /// ... by full recompute.
    pub recomputes: u64,
    /// Fleet passes that fell back in-process (net mode).
    pub fleet_failures: u64,
    /// Batch-absorb latency, microseconds.
    pub mutate_micros: LogHistogram,
    /// Query latency, microseconds.
    pub query_micros: LogHistogram,
}

impl ServeSummary {
    /// The human-readable latency lines (the CI smoke job greps the
    /// `p99` token out of this).
    pub fn render(&self) -> String {
        format!(
            "served {} sessions, {} batches ({} repaired, {} recomputed{})\n\
             mutate latency: p50 {:.0} us, p99 {:.0} us, max {} us over {} batches\n\
             query latency:  p50 {:.0} us, p99 {:.0} us, max {} us over {} queries",
            self.sessions,
            self.batches,
            self.repairs,
            self.recomputes,
            if self.fleet_failures > 0 {
                format!(", {} fleet fallbacks", self.fleet_failures)
            } else {
                String::new()
            },
            self.mutate_micros.p50(),
            self.mutate_micros.p99(),
            self.mutate_micros.max(),
            self.mutate_micros.count(),
            self.query_micros.p50(),
            self.query_micros.p99(),
            self.query_micros.max(),
            self.query_micros.count(),
        )
    }

    /// The summary as a `BENCH_serve.json`-shaped row.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sessions".into(), Json::UInt(self.sessions)),
            ("batches".into(), Json::UInt(self.batches)),
            ("repairs".into(), Json::UInt(self.repairs)),
            ("recomputes".into(), Json::UInt(self.recomputes)),
            ("fleet_failures".into(), Json::UInt(self.fleet_failures)),
            (
                "mutate_p50_us".into(),
                Json::Float(self.mutate_micros.p50()),
            ),
            (
                "mutate_p99_us".into(),
                Json::Float(self.mutate_micros.p99()),
            ),
            ("mutate_max_us".into(), Json::UInt(self.mutate_micros.max())),
            ("query_p50_us".into(), Json::Float(self.query_micros.p50())),
            ("query_p99_us".into(), Json::Float(self.query_micros.p99())),
        ])
    }
}

/// A running server bound to its socket. Constructing it performs the
/// expensive part — load, partition, initial cold compute — so a
/// caller can bind first and signal readiness before blocking in
/// [`Server::run`].
pub struct Server {
    listener: UnixListener,
    state: ServeState,
    socket: PathBuf,
    sessions: u64,
    mutate_micros: LogHistogram,
    query_micros: LogHistogram,
}

impl Server {
    /// Loads `g0`, computes the initial results, and binds the socket.
    pub fn bind(g0: &CsrGraph, cfg: ServerConfig) -> Result<Server, NetError> {
        let state = ServeState::new(g0, cfg.serve)?;
        // A stale socket file from a dead server would fail the bind.
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)
            .map_err(|e| NetError::io("binding the serve socket", e))?;
        Ok(Server {
            listener,
            state,
            socket: cfg.socket,
            sessions: 0,
            mutate_micros: LogHistogram::default(),
            query_micros: LogHistogram::default(),
        })
    }

    /// Serves client sessions until one sends [`Ctrl::Shutdown`], then
    /// returns the latency summary. The socket file is removed on the
    /// way out.
    pub fn run(mut self) -> Result<ServeSummary, NetError> {
        let mut shutdown = false;
        while !shutdown {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| NetError::io("accepting a serve client", e))?;
            self.sessions += 1;
            shutdown = self.session(stream)?;
        }
        let _ = std::fs::remove_file(&self.socket);
        let _ = self.state.close();
        Ok(ServeSummary {
            sessions: self.sessions,
            batches: self.state.batches,
            repairs: self.state.repairs,
            recomputes: self.state.recomputes,
            fleet_failures: self.state.fleet_failures,
            mutate_micros: self.mutate_micros,
            query_micros: self.query_micros,
        })
    }

    /// One client session. Returns `true` when the client asked the
    /// whole server to shut down.
    fn session(&mut self, mut stream: UnixStream) -> Result<bool, NetError> {
        let mut seq = 0u64;
        loop {
            let frame = match read_frame(&mut stream)? {
                Some((_, frame)) => frame,
                // A vanished client ends its session, not the server.
                None => return Ok(false),
            };
            match frame.ctrl {
                Ctrl::MutateBatch { batch_id } => {
                    let started = Instant::now();
                    let ack = self.absorb(&frame.payload);
                    let micros = started.elapsed().as_micros() as u64;
                    self.mutate_micros.record(micros);
                    let ack = match ack {
                        PendingAck::Done(report) => report.ack(micros),
                        PendingAck::Rejected { code } => RepairAck::Rejected { code },
                    };
                    reply(
                        &mut stream,
                        &mut seq,
                        Ctrl::MutateAck { batch_id },
                        encode_one(&ack),
                    )?;
                }
                Ctrl::Query { query_id } => {
                    let started = Instant::now();
                    let answer = self.answer(&frame.payload)?;
                    self.query_micros
                        .record(started.elapsed().as_micros() as u64);
                    reply(&mut stream, &mut seq, Ctrl::QueryReply { query_id }, answer)?;
                }
                Ctrl::SessionEnd => return Ok(false),
                Ctrl::Shutdown => return Ok(true),
                other => {
                    return Err(NetError::protocol(format!(
                        "unexpected request frame {other:?}"
                    )))
                }
            }
        }
    }

    /// Decodes and absorbs one mutation batch.
    fn absorb(&mut self, payload: &Bytes) -> PendingAck {
        let Some(ops) = decode_all::<ServeOp>(payload.clone()) else {
            return PendingAck::Rejected { code: 2 };
        };
        match self.state.apply(&batch_of(&ops)) {
            Ok(report) => PendingAck::Done(report),
            Err(_) => PendingAck::Rejected { code: 1 },
        }
    }

    /// Answers one query with a reply bundle.
    fn answer(&mut self, payload: &Bytes) -> Result<Bytes, NetError> {
        let queries = decode_all::<ServeQuery>(payload.clone())
            .ok_or_else(|| NetError::protocol("undecodable query payload"))?;
        let [query] = queries[..] else {
            return Err(NetError::protocol(format!(
                "a query frame carries exactly one query, got {}",
                queries.len()
            )));
        };
        let mut buf = BytesMut::new();
        match query {
            ServeQuery::MateOf { v } => {
                self.check_vertex(v)?;
                ServeReply::Mate {
                    v,
                    mate: self.state.mate_of(v),
                }
                .encode(&mut buf);
            }
            ServeQuery::ColorOf { v } => {
                self.check_vertex(v)?;
                ServeReply::Color {
                    v,
                    color: self.state.color_of(v),
                }
                .encode(&mut buf);
            }
            ServeQuery::Matching => {
                for v in 0..self.state.num_vertices() as u32 {
                    ServeReply::Mate {
                        v,
                        mate: self.state.mate_of(v),
                    }
                    .encode(&mut buf);
                }
            }
            ServeQuery::Coloring => {
                for v in 0..self.state.num_vertices() as u32 {
                    ServeReply::Color {
                        v,
                        color: self.state.color_of(v),
                    }
                    .encode(&mut buf);
                }
            }
            ServeQuery::Summary => {
                // All mg-backed accessors: a summary of a repair-only
                // stream must not trigger a CSR repack.
                let matching = self.state.matching();
                ServeReply::Summary {
                    n: self.state.num_vertices() as u64,
                    m: self.state.num_edges() as u64,
                    matched: matching.cardinality() as u64,
                    weight: self.state.matched_weight(),
                    colors: self.state.coloring().num_colors() as u32,
                    batches: self.state.batches,
                    repairs: self.state.repairs,
                    recomputes: self.state.recomputes,
                }
                .encode(&mut buf);
            }
        }
        Ok(buf.freeze())
    }

    fn check_vertex(&self, v: u32) -> Result<(), NetError> {
        if (v as usize) < self.state.num_vertices() {
            Ok(())
        } else {
            Err(NetError::protocol(format!(
                "query for vertex {v} outside the graph"
            )))
        }
    }
}

enum PendingAck {
    Done(RepairReport),
    Rejected { code: u8 },
}

fn encode_one(msg: &impl WireMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(msg.encoded_len());
    msg.encode(&mut buf);
    buf.freeze()
}

fn reply(
    stream: &mut UnixStream,
    seq: &mut u64,
    ctrl: Ctrl,
    payload: Bytes,
) -> Result<(), NetError> {
    write_frame(stream, *seq, &Frame::with_payload(ctrl, payload))?;
    *seq += 1;
    Ok(())
}
