//! The serve request plane's payload codecs.
//!
//! cmg-serve reuses cmg-net's framed wire protocol: every request and
//! response travels as a `[len][seq][ctrl][payload]` frame whose
//! control word is one of the v5 session tags ([`Ctrl::MutateBatch`],
//! [`Ctrl::MutateAck`], [`Ctrl::Query`], [`Ctrl::QueryReply`],
//! [`Ctrl::SessionEnd`]). This module defines what rides in the
//! payloads, with the same [`wire_codec!`] discipline as the
//! algorithm messages: one-byte tag, fixed-width little-endian
//! fields, bundles decoded with [`decode_all`].
//!
//! * A `MutateBatch` payload is a bundle of [`ServeOp`]s (one per
//!   mutation, in application order); its `MutateAck` carries exactly
//!   one [`RepairAck`] describing how the batch was absorbed.
//! * A `Query` payload is exactly one [`ServeQuery`]; its `QueryReply`
//!   is a bundle of [`ServeReply`] records (one for point lookups,
//!   n for full-vector queries).
//!
//! [`Ctrl::MutateBatch`]: cmg_net::Ctrl::MutateBatch
//! [`Ctrl::MutateAck`]: cmg_net::Ctrl::MutateAck
//! [`Ctrl::Query`]: cmg_net::Ctrl::Query
//! [`Ctrl::QueryReply`]: cmg_net::Ctrl::QueryReply
//! [`Ctrl::SessionEnd`]: cmg_net::Ctrl::SessionEnd
//! [`wire_codec!`]: cmg_runtime::wire_codec
//! [`decode_all`]: cmg_runtime::message::decode_all

use cmg_graph::{Mutation, MutationBatch};
use cmg_runtime::wire_codec;

wire_codec! {
    /// One edge mutation on the wire. A `MutateBatch` frame's payload
    /// is a bundle of these, in application order (later ops win on
    /// the same edge, exactly like [`MutationBatch`]).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub enum ServeOp {
        /// Insert edge `{u, v}` with weight `w` (or overwrite its
        /// weight if present).
        0 => Insert {
            /// One endpoint.
            u: u32,
            /// The other endpoint.
            v: u32,
            /// Edge weight.
            w: f64,
        },
        /// Delete edge `{u, v}` (absent edge: counted no-op).
        1 => Delete {
            /// One endpoint.
            u: u32,
            /// The other endpoint.
            v: u32,
        },
        /// Set the weight of edge `{u, v}` to `w`.
        2 => Reweight {
            /// One endpoint.
            u: u32,
            /// The other endpoint.
            v: u32,
            /// New edge weight.
            w: f64,
        },
    }
}

wire_codec! {
    /// One query. A `Query` frame's payload is exactly one of these.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ServeQuery {
        /// Current mate of vertex `v` (reply: one [`ServeReply::Mate`]).
        0 => MateOf {
            /// The vertex.
            v: u32,
        },
        /// Current color of vertex `v` (reply: one
        /// [`ServeReply::Color`]).
        1 => ColorOf {
            /// The vertex.
            v: u32,
        },
        /// The whole matching (reply: one `Mate` record per vertex).
        2 => Matching,
        /// The whole coloring (reply: one `Color` record per vertex).
        3 => Coloring,
        /// Service counters (reply: one [`ServeReply::Summary`]).
        4 => Summary,
    }
}

wire_codec! {
    /// One answer record. A `QueryReply` frame's payload is a bundle
    /// of these.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub enum ServeReply {
        /// `v` is matched to `mate` (`u32::MAX` = unmatched).
        0 => Mate {
            /// The vertex.
            v: u32,
            /// Its mate, or `u32::MAX`.
            mate: u32,
        },
        /// `v` has color `color`.
        1 => Color {
            /// The vertex.
            v: u32,
            /// Its color.
            color: u32,
        },
        /// Service state and lifetime counters.
        2 => Summary {
            /// Vertices in the graph.
            n: u64,
            /// Undirected edges currently present.
            m: u64,
            /// Matched pairs.
            matched: u64,
            /// Total matched weight (IEEE-754 bits ride natively).
            weight: f64,
            /// Colors in use.
            colors: u32,
            /// Mutation batches absorbed.
            batches: u64,
            /// ... of which warm-start repairs.
            repairs: u64,
            /// ... of which threshold-triggered full recomputes.
            recomputes: u64,
        },
    }
}

wire_codec! {
    /// The `MutateAck` payload: how one mutation batch was absorbed.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RepairAck {
        /// The batch was applied and the served result is consistent
        /// again.
        0 => Done {
            /// 0 = warm-start repair, 1 = full recompute (dirtiness
            /// past the threshold).
            mode: u8,
            /// Vertices the matching repair re-decided.
            dirty_matching: u64,
            /// Vertices the coloring repair re-decided.
            dirty_coloring: u64,
            /// Engine rounds the matching pass took.
            match_rounds: u64,
            /// Engine rounds the coloring pass took.
            color_rounds: u64,
            /// Server-side latency of the whole batch, microseconds.
            micros: u64,
        },
        /// The batch was rejected whole (graph untouched): bad vertex
        /// id, self-loop, or undecodable payload.
        1 => Rejected {
            /// 1 = invalid mutation, 2 = undecodable payload.
            code: u8,
        },
    }
}

/// Encodes a [`MutationBatch`] as its wire ops.
pub fn ops_of(batch: &MutationBatch) -> Vec<ServeOp> {
    batch
        .ops
        .iter()
        .map(|op| match *op {
            Mutation::Insert { u, v, w } => ServeOp::Insert { u, v, w },
            Mutation::Delete { u, v } => ServeOp::Delete { u, v },
            Mutation::Reweight { u, v, w } => ServeOp::Reweight { u, v, w },
        })
        .collect()
}

/// Decodes wire ops back into a [`MutationBatch`].
pub fn batch_of(ops: &[ServeOp]) -> MutationBatch {
    let mut batch = MutationBatch::new();
    for op in ops {
        match *op {
            ServeOp::Insert { u, v, w } => batch.insert(u, v, w),
            ServeOp::Delete { u, v } => batch.delete(u, v),
            ServeOp::Reweight { u, v, w } => batch.reweight(u, v, w),
        };
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_runtime::message::decode_all;
    use cmg_runtime::WireMessage;

    #[test]
    fn batch_round_trips_through_wire_ops() {
        let mut batch = MutationBatch::new();
        batch.insert(3, 9, 0.25).delete(1, 2).reweight(9, 3, 7.5);
        let ops = ops_of(&batch);
        let mut buf = bytes::BytesMut::new();
        for op in &ops {
            op.encode(&mut buf);
        }
        let decoded: Vec<ServeOp> = decode_all(buf.freeze()).expect("decodes");
        assert_eq!(decoded, ops);
        assert_eq!(batch_of(&decoded), batch);
    }

    #[test]
    fn declared_lengths_match_encoding() {
        for m in [
            ServeOp::Insert { u: 1, v: 2, w: 3.0 },
            ServeOp::Delete { u: 1, v: 2 },
            ServeOp::Reweight { u: 1, v: 2, w: 0.5 },
        ] {
            let mut buf = bytes::BytesMut::new();
            m.encode(&mut buf);
            assert_eq!(buf.len(), m.encoded_len(), "{m:?}");
        }
        let r = ServeReply::Summary {
            n: 1,
            m: 2,
            matched: 3,
            weight: 4.0,
            colors: 5,
            batches: 6,
            repairs: 7,
            recomputes: 8,
        };
        let mut buf = bytes::BytesMut::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
    }
}
