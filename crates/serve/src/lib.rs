//! cmg-serve: the long-lived incremental matching/coloring service.
//!
//! Everything upstream of this crate answers one-shot questions: load
//! a graph, run the paper's protocol, print the result. This crate
//! keeps the answer *warm*. A serving process loads and partitions the
//! graph once, computes the initial matching and coloring, and then
//! stays resident — absorbing edge mutations and answering queries
//! over cmg-net's framed wire protocol without ever paying the load
//! and cold-start cost again.
//!
//! The layering:
//!
//! * [`protocol`] — what rides in the v5 session frames
//!   (`MutateBatch`/`MutateAck`/`Query`/`QueryReply`): wire ops,
//!   queries, replies, and the per-batch repair ack.
//! * [`state`] — [`ServeState`], the resident state machine:
//!   mutable graph, warm-start repair via the matching/coloring
//!   `invalidate` kernels, the repair-vs-recompute dirtiness
//!   threshold, and the optional resident worker fleet
//!   ([`cmg_net::NetSession`]) for cold passes.
//! * [`server`] — [`Server`]: the Unix-socket accept loop,
//!   per-request latency histograms, and the p50/p99 summary.
//! * [`client`] — [`ServeClient`]: a blocking request-by-request
//!   connection for drivers, benches, and the `cmg client` verb.
//!
//! Consistency contract (DESIGN.md §13): after any acknowledged
//! mutation stream, the served matching is a valid locally-dominant
//! matching of the final graph with the ½-approx certificate, and the
//! served coloring is proper. Bit-identity between the warm-repaired
//! coloring and a cold run is explicitly relaxed — the palettes may
//! differ; with distinct edge weights the matching is bit-identical.

pub mod client;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{ServeClient, ServiceSummary};
pub use protocol::{batch_of, ops_of, RepairAck, ServeOp, ServeQuery, ServeReply};
pub use server::{ServeSummary, Server, ServerConfig};
pub use state::{RepairMode, RepairReport, ServeConfig, ServeState};
