//! The client half of the request plane: a blocking connection that
//! speaks the framed serve protocol request-by-request.
//!
//! Every call sends one frame and reads exactly one reply frame, so a
//! client sees its own writes: a query issued after [`ServeClient::mutate`]
//! returns observes the repaired result.

use crate::protocol::{ops_of, RepairAck, ServeQuery, ServeReply};
use bytes::{Bytes, BytesMut};
use cmg_graph::{MutationBatch, NO_VERTEX};
use cmg_net::frame::{read_frame, write_frame};
use cmg_net::{connect_with_backoff, Ctrl, Frame, NetError};
use cmg_runtime::message::decode_all;
use cmg_runtime::WireMessage;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// The Summary query's answer, decoded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceSummary {
    /// Vertices in the graph.
    pub n: u64,
    /// Undirected edges currently present.
    pub m: u64,
    /// Matched pairs.
    pub matched: u64,
    /// Total matched weight.
    pub weight: f64,
    /// Colors in use.
    pub colors: u32,
    /// Mutation batches absorbed.
    pub batches: u64,
    /// ... of which warm-start repairs.
    pub repairs: u64,
    /// ... of which full recomputes.
    pub recomputes: u64,
}

/// A connected serve client.
pub struct ServeClient {
    stream: UnixStream,
    seq: u64,
    next_batch: u64,
    next_query: u64,
}

impl ServeClient {
    /// Dials the server's socket with capped backoff (the server may
    /// still be loading its graph when the client starts).
    pub fn connect(socket: &Path, total: Duration) -> Result<ServeClient, NetError> {
        let stream = connect_with_backoff(
            socket,
            Duration::from_millis(10),
            Duration::from_millis(250),
            total,
        )?;
        Ok(ServeClient {
            stream,
            seq: 0,
            next_batch: 0,
            next_query: 0,
        })
    }

    /// Sends one mutation batch and blocks until the server has
    /// absorbed it. `Ok` carries the server's repair report; a
    /// rejected batch (graph untouched) comes back as a protocol-level
    /// `Ok(RepairAck::Rejected { .. })`, not an error.
    pub fn mutate(&mut self, batch: &MutationBatch) -> Result<RepairAck, NetError> {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let payload = encode_bundle(&ops_of(batch));
        self.send(Ctrl::MutateBatch { batch_id }, payload)?;
        let (ctrl, payload) = self.recv()?;
        match ctrl {
            Ctrl::MutateAck { batch_id: got } if got == batch_id => {
                let acks = decode_all::<RepairAck>(payload)
                    .ok_or_else(|| NetError::protocol("undecodable mutate ack"))?;
                match acks[..] {
                    [ack] => Ok(ack),
                    _ => Err(NetError::protocol("mutate ack carries exactly one record")),
                }
            }
            other => Err(NetError::protocol(format!(
                "expected MutateAck {{ batch_id: {batch_id} }}, got {other:?}"
            ))),
        }
    }

    /// Current mate of `v`, or `None` if unmatched.
    pub fn mate_of(&mut self, v: u32) -> Result<Option<u32>, NetError> {
        match self.query_one(ServeQuery::MateOf { v })? {
            ServeReply::Mate { mate, .. } if mate == NO_VERTEX => Ok(None),
            ServeReply::Mate { mate, .. } => Ok(Some(mate)),
            other => Err(NetError::protocol(format!(
                "expected a Mate reply, got {other:?}"
            ))),
        }
    }

    /// Current color of `v`.
    pub fn color_of(&mut self, v: u32) -> Result<u32, NetError> {
        match self.query_one(ServeQuery::ColorOf { v })? {
            ServeReply::Color { color, .. } => Ok(color),
            other => Err(NetError::protocol(format!(
                "expected a Color reply, got {other:?}"
            ))),
        }
    }

    /// The whole served matching as a mate vector (`NO_VERTEX` =
    /// unmatched), indexed by vertex.
    pub fn matching(&mut self) -> Result<Vec<u32>, NetError> {
        let replies = self.query(ServeQuery::Matching)?;
        let mut mate = vec![NO_VERTEX; replies.len()];
        for r in replies {
            match r {
                ServeReply::Mate { v, mate: m } => {
                    *mate.get_mut(v as usize).ok_or_else(|| {
                        NetError::protocol(format!("matching reply names vertex {v} out of range"))
                    })? = m;
                }
                other => {
                    return Err(NetError::protocol(format!(
                        "expected Mate records, got {other:?}"
                    )))
                }
            }
        }
        Ok(mate)
    }

    /// The whole served coloring as a color vector, indexed by vertex.
    pub fn coloring(&mut self) -> Result<Vec<u32>, NetError> {
        let replies = self.query(ServeQuery::Coloring)?;
        let mut colors = vec![0u32; replies.len()];
        for r in replies {
            match r {
                ServeReply::Color { v, color } => {
                    *colors.get_mut(v as usize).ok_or_else(|| {
                        NetError::protocol(format!("coloring reply names vertex {v} out of range"))
                    })? = color;
                }
                other => {
                    return Err(NetError::protocol(format!(
                        "expected Color records, got {other:?}"
                    )))
                }
            }
        }
        Ok(colors)
    }

    /// Service counters and current result sizes.
    pub fn summary(&mut self) -> Result<ServiceSummary, NetError> {
        match self.query_one(ServeQuery::Summary)? {
            ServeReply::Summary {
                n,
                m,
                matched,
                weight,
                colors,
                batches,
                repairs,
                recomputes,
            } => Ok(ServiceSummary {
                n,
                m,
                matched,
                weight,
                colors,
                batches,
                repairs,
                recomputes,
            }),
            other => Err(NetError::protocol(format!(
                "expected a Summary reply, got {other:?}"
            ))),
        }
    }

    /// Ends this session; the server stays up for the next client.
    pub fn end_session(mut self) -> Result<(), NetError> {
        self.send(Ctrl::SessionEnd, Bytes::new())
    }

    /// Asks the server to shut down after this session.
    pub fn shutdown_server(mut self) -> Result<(), NetError> {
        self.send(Ctrl::Shutdown, Bytes::new())
    }

    fn query(&mut self, q: ServeQuery) -> Result<Vec<ServeReply>, NetError> {
        let query_id = self.next_query;
        self.next_query += 1;
        self.send(Ctrl::Query { query_id }, encode_bundle(&[q]))?;
        let (ctrl, payload) = self.recv()?;
        match ctrl {
            Ctrl::QueryReply { query_id: got } if got == query_id => {
                decode_all::<ServeReply>(payload)
                    .ok_or_else(|| NetError::protocol("undecodable query reply"))
            }
            other => Err(NetError::protocol(format!(
                "expected QueryReply {{ query_id: {query_id} }}, got {other:?}"
            ))),
        }
    }

    fn query_one(&mut self, q: ServeQuery) -> Result<ServeReply, NetError> {
        let replies = self.query(q)?;
        match replies[..] {
            [r] => Ok(r),
            _ => Err(NetError::protocol(format!(
                "expected one reply record, got {}",
                replies.len()
            ))),
        }
    }

    fn send(&mut self, ctrl: Ctrl, payload: Bytes) -> Result<(), NetError> {
        write_frame(
            &mut self.stream,
            self.seq,
            &Frame::with_payload(ctrl, payload),
        )?;
        self.seq += 1;
        Ok(())
    }

    fn recv(&mut self) -> Result<(Ctrl, Bytes), NetError> {
        match read_frame(&mut self.stream)? {
            Some((_, frame)) => Ok((frame.ctrl, frame.payload)),
            None => Err(NetError::protocol(
                "server closed the connection mid-request",
            )),
        }
    }
}

fn encode_bundle<M: WireMessage>(msgs: &[M]) -> Bytes {
    let mut buf = BytesMut::new();
    for m in msgs {
        m.encode(&mut buf);
    }
    buf.freeze()
}
