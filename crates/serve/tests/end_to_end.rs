//! End-to-end serve tests: the resident state repairs correctly, and
//! the framed request plane carries mutations and queries faithfully
//! across a real Unix socket.

use cmg_check::oracles::{half_approx_certificate, proper_coloring, valid_matching};
use cmg_coloring::Coloring;
use cmg_graph::weights::{assign_weights, WeightScheme};
use cmg_graph::{generators, CsrGraph, MutationBatch};
use cmg_matching::Matching;
use cmg_serve::{
    RepairAck, RepairMode, ServeClient, ServeConfig, ServeState, Server, ServerConfig,
};
use std::time::Duration;

fn weighted_grid() -> CsrGraph {
    assign_weights(
        &generators::grid2d(16, 16),
        WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
        42,
    )
}

fn check_served(g: &CsrGraph, mate: &[u32], colors: &[u32]) {
    let m = Matching::from_mates(mate.to_vec());
    valid_matching(g, &m).expect("served matching valid");
    half_approx_certificate(g, &m).expect("served matching locally dominant");
    proper_coloring(g, &Coloring::from_colors(colors.to_vec())).expect("served coloring proper");
}

#[test]
fn warm_repairs_track_a_cold_recompute() {
    let g0 = weighted_grid();
    let mut state = ServeState::new(&g0, ServeConfig::default()).expect("initial load");

    // A few small batches: deletes break matched edges, inserts create
    // newly dominant ones, reweights shuffle local dominance.
    let streams = [
        MutationBatch::new().delete(0, 1).insert(0, 17, 2.5).clone(),
        MutationBatch::new()
            .reweight(17, 18, 3.0)
            .insert(100, 118, 1.9)
            .clone(),
        MutationBatch::new()
            .delete(100, 101)
            .delete(118, 119)
            .clone(),
    ];
    for batch in &streams {
        let report = state.apply(batch).expect("batch accepted");
        assert_eq!(report.mode, RepairMode::Repair, "small batch repairs warm");
        let (mate, colors) = (state.matching(), state.coloring());
        check_served(state.graph(), mate.mates(), colors.colors());
    }

    // Distinct weights: the warm-repaired matching must equal the
    // unique greedy matching a from-scratch run computes.
    let final_g = state.graph().clone();
    let cold = ServeState::new(&final_g, ServeConfig::default()).expect("cold run");
    assert_eq!(
        state.matching().mates(),
        cold.matching().mates(),
        "warm repair must equal the from-scratch matching"
    );
}

#[test]
fn oversized_batches_fall_through_to_recompute() {
    let g0 = weighted_grid();
    let cfg = ServeConfig {
        recompute_threshold: 0.01,
        ..Default::default()
    };
    let mut state = ServeState::new(&g0, cfg).expect("initial load");
    // Reweight a whole row of the grid: far more than 1% dirty.
    let mut batch = MutationBatch::new();
    for c in 0..15u32 {
        batch.reweight(c, c + 1, 10.0 + c as f64);
    }
    let report = state.apply(&batch).expect("batch accepted");
    assert_eq!(report.mode, RepairMode::Recompute);
    assert_eq!(state.recomputes, 1);
    let (mate, colors) = (state.matching(), state.coloring());
    check_served(state.graph(), mate.mates(), colors.colors());
}

#[test]
fn rejected_batches_leave_the_graph_and_results_untouched() {
    let g0 = weighted_grid();
    let mut state = ServeState::new(&g0, ServeConfig::default()).expect("initial load");
    let before_mate = state.matching().mates().to_vec();
    let before_edges = state.num_edges();
    // A self-loop is invalid; the whole batch must be rejected even
    // though the first op alone would be fine.
    let mut batch = MutationBatch::new();
    batch.insert(0, 17, 1.0).insert(5, 5, 1.0);
    assert!(state.apply(&batch).is_err());
    assert_eq!(state.num_edges(), before_edges);
    assert_eq!(state.matching().mates(), &before_mate[..]);
    assert_eq!(state.batches, 0, "rejected batches are not counted");
}

#[test]
fn request_plane_round_trips_mutations_and_queries() {
    let g0 = weighted_grid();
    let socket = std::env::temp_dir().join(format!("cmg-serve-e2e-{}.sock", std::process::id()));
    let server = Server::bind(
        &g0,
        ServerConfig {
            socket: socket.clone(),
            serve: ServeConfig::default(),
        },
    )
    .expect("server binds");
    let handle = std::thread::spawn(move || server.run());

    let mut client =
        ServeClient::connect(&socket, Duration::from_secs(5)).expect("client connects");

    // Mutate, then read back the repaired state through the wire.
    let mut batch = MutationBatch::new();
    batch.delete(0, 1).insert(0, 17, 2.5);
    let ack = client.mutate(&batch).expect("mutate round-trips");
    let RepairAck::Done { mode, .. } = ack else {
        panic!("valid batch must be absorbed, got {ack:?}");
    };
    assert_eq!(mode, 0, "small batch absorbs as a warm repair");

    let mate = client.matching().expect("matching query");
    let colors = client.coloring().expect("coloring query");

    // The served result must be consistent on the mutated graph.
    let mut final_g = cmg_graph::MutableGraph::from_csr(&g0);
    final_g.apply(&batch).expect("same batch applies locally");
    let final_g = final_g.rebuild();
    check_served(&final_g, &mate, &colors);

    // Point lookups agree with the full vectors.
    assert_eq!(
        client.mate_of(0).expect("mate_of"),
        (mate[0] != cmg_graph::NO_VERTEX).then_some(mate[0])
    );
    assert_eq!(client.color_of(0).expect("color_of"), colors[0]);

    // Deleting a matched edge really unmatched-or-rematched vertex 0.
    assert_ne!(mate[0], 1, "deleted edge cannot stay matched");

    let summary = client.summary().expect("summary query");
    assert_eq!(summary.n, final_g.num_vertices() as u64);
    assert_eq!(summary.m, final_g.num_edges() as u64);
    assert_eq!(summary.batches, 1);
    assert_eq!(summary.repairs, 1);

    // An undecodable-as-a-batch mutation is rejected whole over the
    // wire without killing the session.
    let mut bad = MutationBatch::new();
    bad.insert(3, 3, 1.0);
    assert!(matches!(
        client
            .mutate(&bad)
            .expect("rejection is an ack, not an error"),
        RepairAck::Rejected { code: 1 }
    ));

    client.shutdown_server().expect("shutdown");
    let summary = handle
        .join()
        .expect("server thread")
        .expect("server exits cleanly");
    assert_eq!(summary.sessions, 1);
    assert_eq!(summary.batches, 1, "rejected batch not counted");
    assert!(summary.mutate_micros.count() == 2, "both mutates timed");
    assert!(summary.render().contains("p99"));
}

#[test]
fn sessions_are_serial_and_state_survives_between_them() {
    let g0 = weighted_grid();
    let socket =
        std::env::temp_dir().join(format!("cmg-serve-sessions-{}.sock", std::process::id()));
    let server = Server::bind(
        &g0,
        ServerConfig {
            socket: socket.clone(),
            serve: ServeConfig::default(),
        },
    )
    .expect("server binds");
    let handle = std::thread::spawn(move || server.run());

    // Session 1 mutates and leaves.
    let mut c1 = ServeClient::connect(&socket, Duration::from_secs(5)).expect("c1");
    let mut batch = MutationBatch::new();
    batch.insert(0, 17, 9.0);
    c1.mutate(&batch).expect("mutate");
    c1.end_session().expect("end");

    // Session 2 observes session 1's writes.
    let mut c2 = ServeClient::connect(&socket, Duration::from_secs(5)).expect("c2");
    let summary = c2.summary().expect("summary");
    assert_eq!(summary.batches, 1, "state persists across sessions");
    assert_eq!(
        c2.mate_of(0).expect("mate_of"),
        Some(17),
        "weight-9 edge dominates everything around vertex 0"
    );
    c2.shutdown_server().expect("shutdown");

    let summary = handle.join().expect("thread").expect("clean exit");
    assert_eq!(summary.sessions, 2);
}
