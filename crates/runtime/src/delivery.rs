//! Pluggable delivery-order policies for the simulation engine.
//!
//! The paper's correctness argument rests on order-insensitivity: the
//! matching and coloring protocols must converge to valid results under
//! *any* interleaving of message deliveries. The engines, however, are
//! deliberately deterministic — every mailbox is drained in the canonical
//! `(src, arrival, seq)` order. A [`DeliveryPolicy`] perturbs exactly that
//! sort point, letting a checker (see the `cmg-check` crate) re-run the
//! same program under hundreds of adversarial interleavings.
//!
//! # Faithfulness: per-source FIFO
//!
//! MPI guarantees *non-overtaking*: two messages from the same sender to
//! the same receiver are received in send order. The protocols rely on
//! this (e.g. a rank's phase-`k` colors must land before its phase-`k`
//! DONE). Every policy therefore only reorders packets **across**
//! sources and may *delay* a source, but never reorders two packets from
//! the same source. The engine debug-asserts this on every permutation a
//! policy returns.
//!
//! All policies are deterministic functions of `(rank, round, mailbox)`
//! — a given policy replays the exact same schedule, so any failure an
//! exploration finds is reproducible from its seed.

use crate::program::Rank;
use std::fmt;
use std::sync::Arc;

/// Delivery-relevant fingerprint of one in-flight packet, in canonical
/// `(src, arrival, seq)` order. Handed to [`DeliveryScript::choose`] so
/// external explorers can enumerate schedules without seeing payloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeliveryKey {
    /// Sending rank.
    pub src: Rank,
    /// Simulated arrival time.
    pub arrival: f64,
    /// Mailbox insertion index (tie-break of the canonical order).
    pub seq: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// FNV-1a hash of the payload — lets explorers prune permutations
    /// that swap byte-identical packets (which commute).
    pub payload_hash: u64,
}

/// An externally driven delivery order: consulted once per (rank, round)
/// with the canonically ordered mailbox keys, it returns the delivery
/// permutation (indices into `keys`), or `None` for canonical order.
///
/// Returned permutations must preserve per-source FIFO order (see the
/// module docs); the engine debug-asserts this. Scripts may keep interior
/// state (e.g. behind a `Mutex`) to enumerate schedules across runs, but
/// stateful scripts require a serial engine: under `parallel_sim` the
/// consultation order across ranks is nondeterministic, so the engine
/// falls back to the serial path whenever a scripted policy is installed.
pub trait DeliveryScript: Send + Sync {
    /// Chooses the delivery permutation for one mailbox.
    fn choose(&self, rank: Rank, round: u64, keys: &[DeliveryKey]) -> Option<Vec<usize>>;
}

/// How a rank's mailbox is ordered (and possibly delayed) before
/// delivery. `Arrival` is the engine default and is bit-identical to the
/// historical behavior; every other variant is an adversarial schedule
/// for correctness checking and costs one extra sort + key pass per
/// delivery.
#[derive(Clone, Default)]
pub enum DeliveryPolicy {
    /// Canonical `(src, arrival, seq)` order — the deterministic default.
    #[default]
    Arrival,
    /// Seeded random interleaving of the per-source FIFO queues,
    /// re-derived from `(seed, rank, round)` — stateless, so it is safe
    /// under `parallel_sim` and replays exactly.
    RandomPermutation {
        /// Seed selecting the schedule.
        seed: u64,
    },
    /// Sources delivered in descending rank order (within a source:
    /// FIFO). Adversarial mirror image of the canonical order.
    ReverseRank,
    /// Newest-first: sources ordered by descending arrival time of their
    /// most recent packet (within a source: FIFO).
    Lifo,
    /// Adversarial lag: every packet *from* `src` is withheld for
    /// `rounds` engine rounds at each receiver before entering the
    /// mailbox, modelling one slow rank / congested link. FIFO from the
    /// delayed source is preserved (all its traffic shifts uniformly).
    DelayRank {
        /// The rank whose outgoing traffic is delayed.
        src: Rank,
        /// How many rounds each packet is withheld (≥ 1 to delay).
        rounds: u64,
    },
    /// Delivery order chosen by an external script — the hook the
    /// bounded-exhaustive explorer in `cmg-check` drives.
    Scripted(Arc<dyn DeliveryScript>),
}

impl fmt::Debug for DeliveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryPolicy::Arrival => write!(f, "Arrival"),
            DeliveryPolicy::RandomPermutation { seed } => {
                write!(f, "RandomPermutation {{ seed: {seed} }}")
            }
            DeliveryPolicy::ReverseRank => write!(f, "ReverseRank"),
            DeliveryPolicy::Lifo => write!(f, "Lifo"),
            DeliveryPolicy::DelayRank { src, rounds } => {
                write!(f, "DelayRank {{ src: {src}, rounds: {rounds} }}")
            }
            DeliveryPolicy::Scripted(_) => write!(f, "Scripted(..)"),
        }
    }
}

impl DeliveryPolicy {
    /// `true` for the zero-cost canonical policy.
    pub fn is_default(&self) -> bool {
        matches!(self, DeliveryPolicy::Arrival)
    }

    /// `true` when the policy needs an engine that consults it serially.
    pub fn requires_serial(&self) -> bool {
        matches!(self, DeliveryPolicy::Scripted(_))
    }

    /// `true` when the policy computes payload hashes for its keys.
    pub fn wants_payload_hash(&self) -> bool {
        matches!(self, DeliveryPolicy::Scripted(_))
    }

    /// Rounds a packet from `src` arriving at `rank` now is withheld
    /// before it may be delivered (0 = deliver this round).
    pub fn hold_rounds(&self, _rank: Rank, _round: u64, src: Rank) -> u64 {
        match self {
            DeliveryPolicy::DelayRank { src: slow, rounds } if *slow == src => *rounds,
            _ => 0,
        }
    }

    /// The delivery permutation for a canonically ordered mailbox, or
    /// `None` to keep canonical order. Always preserves per-source FIFO.
    pub fn permutation(&self, rank: Rank, round: u64, keys: &[DeliveryKey]) -> Option<Vec<usize>> {
        if keys.len() <= 1 {
            return None;
        }
        match self {
            DeliveryPolicy::Arrival | DeliveryPolicy::DelayRank { .. } => None,
            DeliveryPolicy::RandomPermutation { seed } => {
                Some(random_fifo_merge(*seed, rank, round, keys))
            }
            DeliveryPolicy::ReverseRank => {
                let runs = source_runs(keys);
                let mut perm = Vec::with_capacity(keys.len());
                for &(start, end) in runs.iter().rev() {
                    perm.extend(start..end);
                }
                Some(perm)
            }
            DeliveryPolicy::Lifo => {
                // Sources ordered newest-first by the arrival of their
                // latest packet (ties: higher src first), FIFO inside.
                let mut runs = source_runs(keys);
                runs.sort_by(|a, b| {
                    let (ka, kb) = (&keys[a.1 - 1], &keys[b.1 - 1]);
                    kb.arrival.total_cmp(&ka.arrival).then(kb.src.cmp(&ka.src))
                });
                let mut perm = Vec::with_capacity(keys.len());
                for (start, end) in runs {
                    perm.extend(start..end);
                }
                Some(perm)
            }
            DeliveryPolicy::Scripted(script) => script.choose(rank, round, keys),
        }
    }
}

/// Contiguous per-source runs `[start, end)` of a canonically ordered
/// key slice.
fn source_runs(keys: &[DeliveryKey]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = 0;
    for i in 1..=keys.len() {
        if i == keys.len() || keys[i].src != keys[start].src {
            runs.push((start, i));
            start = i;
        }
    }
    runs
}

/// `true` iff `perm` is a permutation of `0..keys.len()` that keeps every
/// source's packets in their canonical relative order.
pub fn preserves_source_fifo(keys: &[DeliveryKey], perm: &[usize]) -> bool {
    if perm.len() != keys.len() {
        return false;
    }
    let mut seen = vec![false; keys.len()];
    // Last canonical index delivered so far, per source (canonical order
    // within one source is ascending index).
    let mut last: Vec<(Rank, usize)> = Vec::new();
    for &i in perm {
        if i >= keys.len() || seen[i] {
            return false;
        }
        seen[i] = true;
        let src = keys[i].src;
        match last.iter_mut().find(|(s, _)| *s == src) {
            Some((_, prev)) => {
                if *prev > i {
                    return false;
                }
                *prev = i;
            }
            None => last.push((src, i)),
        }
    }
    true
}

/// Deterministic random interleaving of per-source FIFO queues: at each
/// step one non-exhausted source is drawn uniformly and its head packet
/// is delivered next.
fn random_fifo_merge(seed: u64, rank: Rank, round: u64, keys: &[DeliveryKey]) -> Vec<usize> {
    let mut state = mix64(
        seed ^ mix64((rank as u64).wrapping_add(0x9e37_79b9_7f4a_7c15))
            ^ mix64(round.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1)),
    );
    // (next, end) cursor per source run.
    let mut cursors: Vec<(usize, usize)> = source_runs(keys);
    let mut perm = Vec::with_capacity(keys.len());
    while !cursors.is_empty() {
        state = mix64(state);
        let pick = (state % cursors.len() as u64) as usize;
        let (next, end) = &mut cursors[pick];
        perm.push(*next);
        *next += 1;
        if next == end {
            cursors.swap_remove(pick);
        }
    }
    perm
}

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a payload — the packet fingerprint in [`DeliveryKey`].
pub fn payload_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(srcs: &[(Rank, f64)]) -> Vec<DeliveryKey> {
        srcs.iter()
            .enumerate()
            .map(|(i, &(src, arrival))| DeliveryKey {
                src,
                arrival,
                seq: i as u32,
                bytes: 8,
                payload_hash: 0,
            })
            .collect()
    }

    #[test]
    fn default_policy_keeps_canonical_order() {
        let k = keys(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert!(DeliveryPolicy::Arrival.permutation(0, 1, &k).is_none());
        assert!(DeliveryPolicy::Arrival.is_default());
        assert!(!DeliveryPolicy::ReverseRank.is_default());
    }

    #[test]
    fn reverse_rank_reverses_runs_not_packets() {
        let k = keys(&[(0, 1.0), (0, 2.0), (2, 1.5), (5, 0.5)]);
        let perm = DeliveryPolicy::ReverseRank.permutation(0, 1, &k).unwrap();
        assert_eq!(perm, vec![3, 2, 0, 1]);
        assert!(preserves_source_fifo(&k, &perm));
    }

    #[test]
    fn lifo_orders_sources_newest_first() {
        let k = keys(&[(0, 5.0), (1, 1.0), (1, 2.0), (3, 4.0)]);
        let perm = DeliveryPolicy::Lifo.permutation(0, 1, &k).unwrap();
        // Source 0's newest is 5.0, source 3's is 4.0, source 1's is 2.0.
        assert_eq!(perm, vec![0, 3, 1, 2]);
        assert!(preserves_source_fifo(&k, &perm));
    }

    #[test]
    fn random_permutations_are_fifo_preserving_and_replayable() {
        let k = keys(&[(0, 1.0), (0, 2.0), (1, 1.0), (2, 1.0), (2, 2.0)]);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            let pol = DeliveryPolicy::RandomPermutation { seed };
            let perm = pol.permutation(3, 7, &k).unwrap();
            assert!(preserves_source_fifo(&k, &perm), "seed {seed}: {perm:?}");
            assert_eq!(pol.permutation(3, 7, &k).unwrap(), perm, "must replay");
            seen.insert(perm);
        }
        // 5 packets over sources sized (2,1,2): 30 FIFO merges exist;
        // 64 seeds must hit a healthy variety of them.
        assert!(seen.len() > 10, "only {} distinct merges", seen.len());
    }

    #[test]
    fn delay_rank_holds_only_the_slow_source() {
        let pol = DeliveryPolicy::DelayRank { src: 2, rounds: 3 };
        assert_eq!(pol.hold_rounds(0, 5, 2), 3);
        assert_eq!(pol.hold_rounds(0, 5, 1), 0);
        assert!(pol
            .permutation(0, 5, &keys(&[(0, 1.0), (1, 1.0)]))
            .is_none());
    }

    #[test]
    fn fifo_checker_rejects_reordered_source() {
        let k = keys(&[(0, 1.0), (0, 2.0), (1, 1.0)]);
        assert!(preserves_source_fifo(&k, &[2, 0, 1]));
        assert!(!preserves_source_fifo(&k, &[1, 0, 2]), "0's packets swap");
        assert!(!preserves_source_fifo(&k, &[0, 1]), "wrong length");
        assert!(!preserves_source_fifo(&k, &[0, 0, 1]), "duplicate index");
    }

    #[test]
    fn payload_fingerprint_distinguishes_payloads() {
        assert_eq!(payload_fingerprint(b"abc"), payload_fingerprint(b"abc"));
        assert_ne!(payload_fingerprint(b"abc"), payload_fingerprint(b"abd"));
    }
}
