//! Per-destination message aggregation ("aggressive message bundling",
//! §3.3 of the paper — the feature that distinguishes the algorithm from
//! previous ones and lets it scale to tens of thousands of processors).

use crate::message::WireMessage;
use crate::program::Rank;
use bytes::{Bytes, BytesMut};

/// A wire packet: what actually crosses the (simulated) network. With
/// bundling enabled a packet carries every message its sender produced for
/// `dst` this round; with bundling disabled each logical message rides its
/// own packet and pays its own latency.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Destination rank.
    pub dst: Rank,
    /// Encoded messages.
    pub payload: Bytes,
    /// Number of logical messages inside.
    pub logical: u32,
}

/// Cumulative logical-vs-wire accounting for one outbox's lifetime:
/// quantifies what bundling saved (the paper's aggregation win).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BundleStats {
    /// Logical messages pushed.
    pub logical_messages: u64,
    /// Wire packets produced by `finish`.
    pub wire_packets: u64,
    /// Payload bytes across all produced packets.
    pub wire_bytes: u64,
}

impl BundleStats {
    /// Logical messages carried per wire packet (1.0 when unbundled;
    /// 0.0 before any packet was produced).
    pub fn aggregation_ratio(&self) -> f64 {
        if self.wire_packets == 0 {
            0.0
        } else {
            self.logical_messages as f64 / self.wire_packets as f64
        }
    }
}

/// Open-bundle count at which [`OutBox::push`] switches from linear
/// search to the dense `dst → bundle index` table. Below this, the scan
/// touches at most one cache line of `(Rank, _, _)` headers and beats
/// the table's extra indirection.
const DENSE_LOOKUP_THRESHOLD: usize = 16;

/// Sentinel in the dense lookup table: "no open bundle for this rank".
const NO_BUNDLE: u32 = u32::MAX;

/// Outgoing-message buffer for one rank and one round.
#[derive(Debug)]
pub struct OutBox<M: WireMessage> {
    bundling: bool,
    /// One open bundle per destination. A rank usually talks to few
    /// neighbors, so linear search is the fast path; once the open-bundle
    /// count crosses [`DENSE_LOOKUP_THRESHOLD`] (the FIAC/FIAB comm
    /// variants fan out to O(p) destinations) `dst_index` takes over.
    bundles: Vec<(Rank, BytesMut, u32)>,
    /// Lazily built `dst → index into bundles` table (`NO_BUNDLE` =
    /// none). Empty until the threshold is first crossed; kept allocated
    /// across rounds afterwards, with entries reset in `finish`.
    dst_index: Vec<u32>,
    /// Total ranks in the run; 0 disables the dense table (standalone
    /// outboxes constructed via [`OutBox::new`]).
    num_ranks: Rank,
    /// Finished packets (used directly in non-bundling mode).
    packets: Vec<Packet>,
    stats: BundleStats,
    _marker: std::marker::PhantomData<M>,
}

impl<M: WireMessage> OutBox<M> {
    /// An empty outbox. `bundling` selects aggregation vs one-packet-per-
    /// message behavior.
    pub fn new(bundling: bool) -> Self {
        OutBox::for_ranks(bundling, 0)
    }

    /// An empty outbox that knows the run's rank count, enabling the
    /// dense destination table for wide fan-out rounds.
    pub fn for_ranks(bundling: bool, num_ranks: Rank) -> Self {
        OutBox {
            bundling,
            bundles: Vec::new(),
            dst_index: Vec::new(),
            num_ranks,
            packets: Vec::new(),
            stats: BundleStats::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Index of the open bundle for `dst`, or `None`. O(1) once the
    /// dense table is live, linear over the (few) open bundles before.
    #[inline]
    fn bundle_index(&mut self, dst: Rank) -> Option<usize> {
        if !self.dst_index.is_empty() {
            let i = self.dst_index[dst as usize];
            return (i != NO_BUNDLE).then_some(i as usize);
        }
        if self.num_ranks > 0 && self.bundles.len() >= DENSE_LOOKUP_THRESHOLD {
            // Crossing the threshold for the first time: build the table
            // and answer from it; stays live for the outbox's lifetime.
            self.dst_index = vec![NO_BUNDLE; self.num_ranks as usize];
            for (i, (d, _, _)) in self.bundles.iter().enumerate() {
                self.dst_index[*d as usize] = i as u32;
            }
            let i = self.dst_index[dst as usize];
            return (i != NO_BUNDLE).then_some(i as usize);
        }
        self.bundles.iter().position(|(d, _, _)| *d == dst)
    }

    /// Cumulative logical-vs-wire accounting since construction.
    pub fn stats(&self) -> BundleStats {
        self.stats
    }

    /// Queues `msg` for delivery to `dst` next round.
    pub fn push(&mut self, dst: Rank, msg: &M) {
        self.stats.logical_messages += 1;
        if self.bundling {
            match self.bundle_index(dst) {
                Some(i) => {
                    // hot-path: begin (append to an open bundle)
                    let (_, buf, n) = &mut self.bundles[i];
                    msg.encode(buf);
                    *n += 1;
                    // hot-path: end (append to an open bundle)
                }
                None => {
                    let mut buf = BytesMut::with_capacity(64);
                    msg.encode(&mut buf);
                    if !self.dst_index.is_empty() {
                        self.dst_index[dst as usize] = self.bundles.len() as u32;
                    }
                    self.bundles.push((dst, buf, 1));
                }
            }
        } else {
            let mut buf = BytesMut::with_capacity(msg.encoded_len());
            msg.encode(&mut buf);
            self.packets.push(Packet {
                dst,
                payload: buf.freeze(),
                logical: 1,
            });
        }
    }

    /// `true` if nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty() && self.packets.is_empty()
    }

    /// Closes the round: returns all packets, sorted by destination for
    /// deterministic routing, leaving the outbox empty for reuse.
    pub fn finish(&mut self) -> Vec<Packet> {
        let mut packets = Vec::new();
        self.finish_into(&mut packets);
        packets
    }

    /// Closes the round, appending the destination-sorted packets to
    /// `out` (which must be empty). The allocation-aware variant of
    /// [`OutBox::finish`]: the caller recycles `out` across rounds, and
    /// the outbox keeps its own bundle-list and packet-list allocations.
    pub fn finish_into(&mut self, out: &mut Vec<Packet>) {
        debug_assert!(out.is_empty(), "finish_into wants a drained buffer");
        // hot-path: begin (packet close-out — freeze moves, no copies)
        out.append(&mut self.packets);
        for (dst, buf, n) in self.bundles.drain(..) {
            if !self.dst_index.is_empty() {
                self.dst_index[dst as usize] = NO_BUNDLE;
            }
            out.push(Packet {
                dst,
                payload: buf.freeze(),
                logical: n,
            });
        }
        // hot-path: end (packet close-out)
        // Stable: non-bundled same-destination packets keep send order.
        out.sort_by_key(|p| p.dst);
        self.stats.wire_packets += out.len() as u64;
        self.stats.wire_bytes += out.iter().map(|p| p.payload.len() as u64).sum::<u64>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundling_merges_same_destination() {
        let mut ob: OutBox<u32> = OutBox::new(true);
        ob.push(3, &1);
        ob.push(3, &2);
        ob.push(1, &9);
        let packets = ob.finish();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].dst, 1);
        assert_eq!(packets[1].dst, 3);
        assert_eq!(packets[1].logical, 2);
        assert_eq!(packets[1].payload.len(), 8);
        assert!(ob.is_empty());
    }

    #[test]
    fn no_bundling_gives_one_packet_per_message() {
        let mut ob: OutBox<u32> = OutBox::new(false);
        ob.push(3, &1);
        ob.push(3, &2);
        let packets = ob.finish();
        assert_eq!(packets.len(), 2);
        assert!(packets.iter().all(|p| p.logical == 1));
    }

    #[test]
    fn finish_resets_for_reuse() {
        let mut ob: OutBox<u32> = OutBox::new(true);
        ob.push(0, &1);
        assert_eq!(ob.finish().len(), 1);
        assert!(ob.finish().is_empty());
        ob.push(1, &2);
        assert_eq!(ob.finish().len(), 1);
    }

    #[test]
    fn dense_table_matches_linear_lookup() {
        // Same pushes through a table-enabled and a linear-only outbox
        // must produce identical packets, rounds on end.
        let p: Rank = 200;
        let mut dense: OutBox<u32> = OutBox::for_ranks(true, p);
        let mut linear: OutBox<u32> = OutBox::new(true);
        for round in 0..3 {
            // Fan out well past DENSE_LOOKUP_THRESHOLD, with repeats.
            for i in 0..120u32 {
                let dst = (i * 7 + round) % p;
                dense.push(dst, &i);
                linear.push(dst, &i);
            }
            let a = dense.finish();
            let b = linear.finish();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.dst, y.dst);
                assert_eq!(x.logical, y.logical);
                assert_eq!(x.payload, y.payload);
            }
        }
        assert_eq!(dense.stats(), linear.stats());
    }

    #[test]
    fn finish_into_recycles_buffer() {
        let mut ob: OutBox<u32> = OutBox::for_ranks(true, 8);
        let mut out = Vec::new();
        ob.push(3, &1);
        ob.push(1, &2);
        ob.finish_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dst, 1);
        out.clear();
        ob.push(5, &7);
        ob.finish_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, 5);
        assert_eq!(ob.stats().wire_packets, 3);
    }

    #[test]
    fn stats_track_logical_vs_wire() {
        let mut bundled: OutBox<u32> = OutBox::new(true);
        for _ in 0..6 {
            bundled.push(3, &7);
        }
        bundled.push(1, &7);
        bundled.finish();
        let s = bundled.stats();
        assert_eq!(s.logical_messages, 7);
        assert_eq!(s.wire_packets, 2);
        assert_eq!(s.wire_bytes, 7 * 4);
        assert_eq!(s.aggregation_ratio(), 3.5);

        let mut flat: OutBox<u32> = OutBox::new(false);
        for _ in 0..7 {
            flat.push(3, &7);
        }
        flat.finish();
        assert_eq!(flat.stats().wire_packets, 7);
        assert_eq!(flat.stats().aggregation_ratio(), 1.0);
    }
}
