//! Per-destination message aggregation ("aggressive message bundling",
//! §3.3 of the paper — the feature that distinguishes the algorithm from
//! previous ones and lets it scale to tens of thousands of processors).

use crate::message::WireMessage;
use crate::program::Rank;
use bytes::{Bytes, BytesMut};

/// A wire packet: what actually crosses the (simulated) network. With
/// bundling enabled a packet carries every message its sender produced for
/// `dst` this round; with bundling disabled each logical message rides its
/// own packet and pays its own latency.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Destination rank.
    pub dst: Rank,
    /// Encoded messages.
    pub payload: Bytes,
    /// Number of logical messages inside.
    pub logical: u32,
}

/// Outgoing-message buffer for one rank and one round.
#[derive(Debug)]
pub struct OutBox<M: WireMessage> {
    bundling: bool,
    /// One open bundle per destination (small: a rank talks to few
    /// neighbors, so linear search beats a hash map here).
    bundles: Vec<(Rank, BytesMut, u32)>,
    /// Finished packets (used directly in non-bundling mode).
    packets: Vec<Packet>,
    _marker: std::marker::PhantomData<M>,
}

impl<M: WireMessage> OutBox<M> {
    /// An empty outbox. `bundling` selects aggregation vs one-packet-per-
    /// message behavior.
    pub fn new(bundling: bool) -> Self {
        OutBox {
            bundling,
            bundles: Vec::new(),
            packets: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Queues `msg` for delivery to `dst` next round.
    pub fn push(&mut self, dst: Rank, msg: &M) {
        if self.bundling {
            match self.bundles.iter_mut().find(|(d, _, _)| *d == dst) {
                Some((_, buf, n)) => {
                    msg.encode(buf);
                    *n += 1;
                }
                None => {
                    let mut buf = BytesMut::with_capacity(64);
                    msg.encode(&mut buf);
                    self.bundles.push((dst, buf, 1));
                }
            }
        } else {
            let mut buf = BytesMut::with_capacity(msg.encoded_len());
            msg.encode(&mut buf);
            self.packets.push(Packet {
                dst,
                payload: buf.freeze(),
                logical: 1,
            });
        }
    }

    /// `true` if nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty() && self.packets.is_empty()
    }

    /// Closes the round: returns all packets, sorted by destination for
    /// deterministic routing, leaving the outbox empty for reuse.
    pub fn finish(&mut self) -> Vec<Packet> {
        let mut packets = std::mem::take(&mut self.packets);
        for (dst, buf, n) in self.bundles.drain(..) {
            packets.push(Packet {
                dst,
                payload: buf.freeze(),
                logical: n,
            });
        }
        packets.sort_by_key(|p| p.dst);
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundling_merges_same_destination() {
        let mut ob: OutBox<u32> = OutBox::new(true);
        ob.push(3, &1);
        ob.push(3, &2);
        ob.push(1, &9);
        let packets = ob.finish();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].dst, 1);
        assert_eq!(packets[1].dst, 3);
        assert_eq!(packets[1].logical, 2);
        assert_eq!(packets[1].payload.len(), 8);
        assert!(ob.is_empty());
    }

    #[test]
    fn no_bundling_gives_one_packet_per_message() {
        let mut ob: OutBox<u32> = OutBox::new(false);
        ob.push(3, &1);
        ob.push(3, &2);
        let packets = ob.finish();
        assert_eq!(packets.len(), 2);
        assert!(packets.iter().all(|p| p.logical == 1));
    }

    #[test]
    fn finish_resets_for_reuse() {
        let mut ob: OutBox<u32> = OutBox::new(true);
        ob.push(0, &1);
        assert_eq!(ob.finish().len(), 1);
        assert!(ob.finish().is_empty());
        ob.push(1, &2);
        assert_eq!(ob.finish().len(), 1);
    }
}
