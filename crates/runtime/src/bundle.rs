//! Per-destination message aggregation ("aggressive message bundling",
//! §3.3 of the paper — the feature that distinguishes the algorithm from
//! previous ones and lets it scale to tens of thousands of processors).

use crate::message::WireMessage;
use crate::program::Rank;
use bytes::{Bytes, BytesMut};

/// A wire packet: what actually crosses the (simulated) network. With
/// bundling enabled a packet carries every message its sender produced for
/// `dst` this round; with bundling disabled each logical message rides its
/// own packet and pays its own latency.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Destination rank.
    pub dst: Rank,
    /// Encoded messages.
    pub payload: Bytes,
    /// Number of logical messages inside.
    pub logical: u32,
}

/// Cumulative logical-vs-wire accounting for one outbox's lifetime:
/// quantifies what bundling saved (the paper's aggregation win).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BundleStats {
    /// Logical messages pushed.
    pub logical_messages: u64,
    /// Wire packets produced by `finish`.
    pub wire_packets: u64,
    /// Payload bytes across all produced packets.
    pub wire_bytes: u64,
}

impl BundleStats {
    /// Logical messages carried per wire packet (1.0 when unbundled;
    /// 0.0 before any packet was produced).
    pub fn aggregation_ratio(&self) -> f64 {
        if self.wire_packets == 0 {
            0.0
        } else {
            self.logical_messages as f64 / self.wire_packets as f64
        }
    }
}

/// Outgoing-message buffer for one rank and one round.
#[derive(Debug)]
pub struct OutBox<M: WireMessage> {
    bundling: bool,
    /// One open bundle per destination (small: a rank talks to few
    /// neighbors, so linear search beats a hash map here).
    bundles: Vec<(Rank, BytesMut, u32)>,
    /// Finished packets (used directly in non-bundling mode).
    packets: Vec<Packet>,
    stats: BundleStats,
    _marker: std::marker::PhantomData<M>,
}

impl<M: WireMessage> OutBox<M> {
    /// An empty outbox. `bundling` selects aggregation vs one-packet-per-
    /// message behavior.
    pub fn new(bundling: bool) -> Self {
        OutBox {
            bundling,
            bundles: Vec::new(),
            packets: Vec::new(),
            stats: BundleStats::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Cumulative logical-vs-wire accounting since construction.
    pub fn stats(&self) -> BundleStats {
        self.stats
    }

    /// Queues `msg` for delivery to `dst` next round.
    pub fn push(&mut self, dst: Rank, msg: &M) {
        self.stats.logical_messages += 1;
        if self.bundling {
            match self.bundles.iter_mut().find(|(d, _, _)| *d == dst) {
                Some((_, buf, n)) => {
                    msg.encode(buf);
                    *n += 1;
                }
                None => {
                    let mut buf = BytesMut::with_capacity(64);
                    msg.encode(&mut buf);
                    self.bundles.push((dst, buf, 1));
                }
            }
        } else {
            let mut buf = BytesMut::with_capacity(msg.encoded_len());
            msg.encode(&mut buf);
            self.packets.push(Packet {
                dst,
                payload: buf.freeze(),
                logical: 1,
            });
        }
    }

    /// `true` if nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty() && self.packets.is_empty()
    }

    /// Closes the round: returns all packets, sorted by destination for
    /// deterministic routing, leaving the outbox empty for reuse.
    pub fn finish(&mut self) -> Vec<Packet> {
        let mut packets = std::mem::take(&mut self.packets);
        for (dst, buf, n) in self.bundles.drain(..) {
            packets.push(Packet {
                dst,
                payload: buf.freeze(),
                logical: n,
            });
        }
        packets.sort_by_key(|p| p.dst);
        self.stats.wire_packets += packets.len() as u64;
        self.stats.wire_bytes += packets.iter().map(|p| p.payload.len() as u64).sum::<u64>();
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundling_merges_same_destination() {
        let mut ob: OutBox<u32> = OutBox::new(true);
        ob.push(3, &1);
        ob.push(3, &2);
        ob.push(1, &9);
        let packets = ob.finish();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].dst, 1);
        assert_eq!(packets[1].dst, 3);
        assert_eq!(packets[1].logical, 2);
        assert_eq!(packets[1].payload.len(), 8);
        assert!(ob.is_empty());
    }

    #[test]
    fn no_bundling_gives_one_packet_per_message() {
        let mut ob: OutBox<u32> = OutBox::new(false);
        ob.push(3, &1);
        ob.push(3, &2);
        let packets = ob.finish();
        assert_eq!(packets.len(), 2);
        assert!(packets.iter().all(|p| p.logical == 1));
    }

    #[test]
    fn finish_resets_for_reuse() {
        let mut ob: OutBox<u32> = OutBox::new(true);
        ob.push(0, &1);
        assert_eq!(ob.finish().len(), 1);
        assert!(ob.finish().is_empty());
        ob.push(1, &2);
        assert_eq!(ob.finish().len(), 1);
    }

    #[test]
    fn stats_track_logical_vs_wire() {
        let mut bundled: OutBox<u32> = OutBox::new(true);
        for _ in 0..6 {
            bundled.push(3, &7);
        }
        bundled.push(1, &7);
        bundled.finish();
        let s = bundled.stats();
        assert_eq!(s.logical_messages, 7);
        assert_eq!(s.wire_packets, 2);
        assert_eq!(s.wire_bytes, 7 * 4);
        assert_eq!(s.aggregation_ratio(), 3.5);

        let mut flat: OutBox<u32> = OutBox::new(false);
        for _ in 0..7 {
            flat.push(3, &7);
        }
        flat.finish();
        assert_eq!(flat.stats().wire_packets, 7);
        assert_eq!(flat.stats().aggregation_ratio(), 1.0);
    }
}
