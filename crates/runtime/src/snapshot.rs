//! Snapshottable rank-program state.
//!
//! Every [`RankProgram`](crate::RankProgram) carries an explicit,
//! serializable value of its algorithm state: the associated `Snapshot`
//! type. A snapshot is a **record stream** — a sequence of fixed-width
//! records declared through [`wire_codec!`](crate::wire_codec) and
//! concatenated back-to-back exactly like a message bundle — so the same
//! codec machinery (and the same `cmg-analyze` wire-drift fingerprinting)
//! covers checkpoint payloads and wire messages alike.
//!
//! The contract splits a program's fields into two classes:
//!
//! * **algorithm state** — pointers, proposals, palettes, phase counters,
//!   and the in-flight state of substrate collectives
//!   ([`DoneWave`](crate::DoneWave) counts,
//!   [`TreeAllreduce`](crate::TreeAllreduce) partial sums). These go into
//!   the snapshot; omitting any of them restores a program that deadlocks
//!   or diverges.
//! * **incidental state** — halo views, weight-sorted adjacency copies,
//!   stamp-based scratch buffers, fan-out dedup stamps. These are
//!   *rebuilt* on restore from the construction context (`Meta`), exactly
//!   as `new()` builds them, which both shrinks checkpoints and keeps the
//!   wire format honest about what the algorithm actually is.
//!
//! Restoring must be **behaviorally exact**: a program round-tripped
//! through `snapshot → encode → decode → restore` at any round edge must
//! produce bit-identical results, statistics, and traces from that point
//! on. `tests/snapshot_equivalence.rs` holds the property tests pinning
//! this for all five shipped rank programs; the engines enforce it live
//! through `EngineConfig::checkpoint_every` (sim/threaded equivalence
//! oracle) and the cmg-net checkpoint/respawn path.

use crate::message::{decode_all_into, WireMessage};
use bytes::Bytes;

/// A serializable program snapshot: a stream of fixed-width wire records.
///
/// The canonical implementation is `Vec<R>` for a `wire_codec!`-declared
/// record enum `R`; `()` serves stateless test programs. The provided
/// `encode_bytes`/`decode_bytes` pair is the only wire format — engines
/// and the net transport never see the record type, only bytes.
pub trait ProgramSnapshot: Sized + Send {
    /// The fixed-width record the stream is made of.
    type Record: WireMessage;

    /// Consumes the snapshot into its record sequence (order is part of
    /// the format: restore sees records in exactly this order).
    fn into_records(self) -> Vec<Self::Record>;

    /// Rebuilds a snapshot from a decoded record sequence. `None` if the
    /// records are not a well-formed snapshot.
    fn from_records(records: Vec<Self::Record>) -> Option<Self>;

    /// Appends the encoded record stream to `out` — the same bytes as
    /// [`encode_bytes`](Self::encode_bytes), written into a
    /// caller-owned buffer. This is the checkpoint hot path: the net
    /// worker serializes a snapshot at every checkpoint edge, and
    /// encoding straight into the checkpoint frame avoids an
    /// intermediate allocation and copy per checkpoint. Snapshot types
    /// with a bulk encoding override this (and must stay
    /// byte-identical to the generic record path).
    fn encode_into(self, out: &mut Vec<u8>) {
        let records = self.into_records();
        out.reserve(records.iter().map(WireMessage::encoded_len).sum());
        for r in &records {
            r.encode(out);
        }
    }

    /// Serializes the snapshot to bytes (records concatenated in order,
    /// no separators — the bundle format).
    fn encode_bytes(self) -> Bytes {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        Bytes::from(buf)
    }

    /// Deserializes a snapshot from bytes. `None` on malformed input.
    fn decode_bytes(buf: Bytes) -> Option<Self> {
        let mut records = Vec::new();
        decode_all_into(buf, &mut records)?;
        Self::from_records(records)
    }
}

/// The canonical snapshot shape: a record stream is a snapshot of
/// itself.
impl<R: WireMessage> ProgramSnapshot for Vec<R> {
    type Record = R;

    fn into_records(self) -> Vec<R> {
        self
    }

    fn from_records(records: Vec<R>) -> Option<Self> {
        Some(records)
    }
}

/// The empty snapshot, for programs without serializable algorithm state
/// (test fixtures; see [`trivial_snapshot!`](crate::trivial_snapshot)).
impl ProgramSnapshot for () {
    type Record = u32;

    fn into_records(self) -> Vec<u32> {
        Vec::new()
    }

    fn from_records(records: Vec<u32>) -> Option<Self> {
        records.is_empty().then_some(())
    }
}

/// Expands, **inside an `impl RankProgram` block**, to the snapshot half
/// of the contract for a test-only program: the snapshot is empty and
/// `Meta` is a clone of the whole program, so restore reproduces the
/// program exactly (the program must be `Clone`). This keeps toy
/// fixtures honest under the engines' `checkpoint_every` equivalence
/// oracle without forcing every test to declare a wire format. Real
/// algorithms must not use this: their state has to be explicit and
/// serializable.
#[macro_export]
macro_rules! trivial_snapshot {
    () => {
        type Snapshot = ();
        type Meta = Self;

        fn snapshot(&self) {}

        fn restore(meta: Self, _snap: ()) -> Self {
            meta
        }

        fn meta(&self) -> Self {
            self.clone()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trips_through_bytes() {
        let snap: Vec<u32> = vec![7, 11, 13];
        let bytes = snap.clone().encode_bytes();
        assert_eq!(bytes.len(), 12);
        let back = <Vec<u32>>::decode_bytes(bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_is_zero_bytes() {
        let bytes = ().encode_bytes();
        assert!(bytes.is_empty());
        assert_eq!(<()>::decode_bytes(bytes), Some(()));
    }

    #[test]
    fn unit_rejects_nonempty_stream() {
        let bytes = vec![1u32].encode_bytes();
        assert_eq!(<()>::decode_bytes(bytes), None);
    }

    #[test]
    fn malformed_bytes_rejected() {
        let bytes = Bytes::from(vec![1u8, 2, 3]); // not a multiple of 4
        assert!(<Vec<u32>>::decode_bytes(bytes).is_none());
    }
}
