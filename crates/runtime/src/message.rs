//! Wire encoding of messages.
//!
//! Bundles are byte buffers, so the engines account communication volume in
//! *bytes* — the unit the cost model (and the real machine) cares about.

use bytes::{Buf, BufMut};

/// A message that can be packed into / unpacked from a wire bundle.
///
/// Implementations must be self-delimiting: `decode` consumes exactly the
/// bytes `encode` produced, so messages concatenate into bundles without
/// separators.
pub trait WireMessage: Send + Sized + 'static {
    /// Appends this message's encoding to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Decodes one message from the front of `buf`, or `None` if the bytes
    /// are malformed/truncated.
    fn decode(buf: &mut impl Buf) -> Option<Self>;

    /// Exact number of bytes [`Self::encode`] writes.
    fn encoded_len(&self) -> usize;
}

/// Decodes a whole bundle into its constituent messages.
pub fn decode_all<M: WireMessage>(buf: impl Buf) -> Option<Vec<M>> {
    let mut out = Vec::new();
    decode_all_into(buf, &mut out)?;
    Some(out)
}

/// Decodes a whole bundle, appending the messages to `out`, and returns
/// how many were appended (`None` on malformed bytes, like
/// [`decode_all`]).
///
/// This is the allocation-aware variant the engine delivery loops use:
/// `out` can be a recycled buffer, and the expected message count is
/// estimated up front from the payload size and the first message's
/// [`WireMessage::encoded_len`], so a bundle of `n` uniform messages
/// costs at most one `reserve` instead of `log n` doublings.
pub fn decode_all_into<M: WireMessage>(mut buf: impl Buf, out: &mut Vec<M>) -> Option<usize> {
    if !buf.has_remaining() {
        return Some(0);
    }
    // hot-path: begin (bundle decode — single up-front reserve, no
    // per-message allocation)
    let total = buf.remaining();
    let first = M::decode(&mut buf)?;
    // Capacity hint: uniform-size messages are the overwhelmingly common
    // case, so size for exactly that; mixed sizes merely over- or
    // under-reserve, never break correctness.
    out.reserve(total / first.encoded_len().max(1));
    out.push(first);
    let mut n = 1;
    while buf.has_remaining() {
        out.push(M::decode(&mut buf)?);
        n += 1;
    }
    // hot-path: end (bundle decode)
    Some(n)
}

impl WireMessage for u32 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 4).then(|| buf.get_u32_le())
    }

    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireMessage for u64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 8).then(|| buf.get_u64_le())
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireMessage for (u32, u32) {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.0);
        buf.put_u32_le(self.1);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 8).then(|| (buf.get_u32_le(), buf.get_u32_le()))
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Bytes, BytesMut};

    #[test]
    fn u32_round_trip() {
        let mut buf = BytesMut::new();
        42u32.encode(&mut buf);
        7u32.encode(&mut buf);
        let msgs: Vec<u32> = decode_all(buf.freeze()).unwrap();
        assert_eq!(msgs, vec![42, 7]);
    }

    #[test]
    fn pair_round_trip() {
        let mut buf = BytesMut::new();
        (1u32, 2u32).encode(&mut buf);
        (3u32, 4u32).encode(&mut buf);
        assert_eq!(buf.len(), 16);
        let msgs: Vec<(u32, u32)> = decode_all(buf.freeze()).unwrap();
        assert_eq!(msgs, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn decode_all_into_appends_and_reserves() {
        let mut buf = BytesMut::new();
        for v in 0..100u32 {
            v.encode(&mut buf);
        }
        let mut out: Vec<u32> = vec![999];
        let n = decode_all_into(buf.freeze(), &mut out).unwrap();
        assert_eq!(n, 100);
        assert_eq!(out.len(), 101);
        assert_eq!(out[0], 999);
        assert_eq!(out[100], 99);
        // The capacity hint sized the buffer in one reservation.
        assert!(out.capacity() >= 101);

        let mut empty_out: Vec<u32> = Vec::new();
        assert_eq!(decode_all_into(Bytes::new(), &mut empty_out), Some(0));
        assert!(empty_out.is_empty());
    }

    #[test]
    fn truncated_bundle_is_rejected() {
        let mut buf = BytesMut::new();
        42u32.encode(&mut buf);
        let bytes = buf.freeze();
        let truncated = bytes.slice(0..3);
        assert!(decode_all::<u32>(truncated).is_none());
    }

    #[test]
    fn encoded_len_matches_encode() {
        let mut buf = BytesMut::new();
        (9u32, 9u32).encode(&mut buf);
        assert_eq!(buf.len(), (9u32, 9u32).encoded_len());
    }
}
