//! Wire encoding of messages.
//!
//! Bundles are byte buffers, so the engines account communication volume in
//! *bytes* — the unit the cost model (and the real machine) cares about.

use bytes::{Buf, BufMut};

/// A message that can be packed into / unpacked from a wire bundle.
///
/// Implementations must be self-delimiting: `decode` consumes exactly the
/// bytes `encode` produced, so messages concatenate into bundles without
/// separators.
pub trait WireMessage: Send + Sized + 'static {
    /// Appends this message's encoding to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Decodes one message from the front of `buf`, or `None` if the bytes
    /// are malformed/truncated.
    fn decode(buf: &mut impl Buf) -> Option<Self>;

    /// Exact number of bytes [`Self::encode`] writes.
    fn encoded_len(&self) -> usize;
}

/// Decodes a whole bundle into its constituent messages.
pub fn decode_all<M: WireMessage>(mut buf: impl Buf) -> Option<Vec<M>> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(M::decode(&mut buf)?);
    }
    Some(out)
}

impl WireMessage for u32 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 4).then(|| buf.get_u32_le())
    }

    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireMessage for u64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 8).then(|| buf.get_u64_le())
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireMessage for (u32, u32) {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.0);
        buf.put_u32_le(self.1);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 8).then(|| (buf.get_u32_le(), buf.get_u32_le()))
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn u32_round_trip() {
        let mut buf = BytesMut::new();
        42u32.encode(&mut buf);
        7u32.encode(&mut buf);
        let msgs: Vec<u32> = decode_all(buf.freeze()).unwrap();
        assert_eq!(msgs, vec![42, 7]);
    }

    #[test]
    fn pair_round_trip() {
        let mut buf = BytesMut::new();
        (1u32, 2u32).encode(&mut buf);
        (3u32, 4u32).encode(&mut buf);
        assert_eq!(buf.len(), 16);
        let msgs: Vec<(u32, u32)> = decode_all(buf.freeze()).unwrap();
        assert_eq!(msgs, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn truncated_bundle_is_rejected() {
        let mut buf = BytesMut::new();
        42u32.encode(&mut buf);
        let bytes = buf.freeze();
        let truncated = bytes.slice(0..3);
        assert!(decode_all::<u32>(truncated).is_none());
    }

    #[test]
    fn encoded_len_matches_encode() {
        let mut buf = BytesMut::new();
        (9u32, 9u32).encode(&mut buf);
        assert_eq!(buf.len(), (9u32, 9u32).encoded_len());
    }
}
