//! The rank-program abstraction: how distributed algorithms are expressed.

use crate::bundle::OutBox;
use crate::message::WireMessage;

/// A processor rank (MPI rank equivalent).
pub type Rank = u32;

/// What a rank reports at the end of a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The rank has local work left and wants another round even without
    /// incoming messages.
    Active,
    /// The rank is quiescent: it only needs another round if messages
    /// arrive. The run terminates when every rank is `Idle` and no packets
    /// are in flight.
    Idle,
}

/// Per-round context handed to a rank: message sending, work charging,
/// topology queries, and structured event emission.
pub struct RankCtx<M: WireMessage> {
    rank: Rank,
    num_ranks: Rank,
    round: u64,
    work: u64,
    outbox: OutBox<M>,
    recorder: cmg_obs::RecorderHandle,
    /// Current timestamp for emitted events: virtual seconds under the
    /// simulation engine, wall seconds since run start under the
    /// threaded engine. Engine-maintained via [`RankCtx::set_now`].
    now: f64,
    /// Messages this rank addressed to itself. Self-sends are legal
    /// (delivered next round like any other message) but unusual enough
    /// that exploration harnesses want them visible: a self-send packet
    /// enters the mailbox schedule and must be fingerprinted like any
    /// other delivery.
    self_sends: u64,
}

impl<M: WireMessage> RankCtx<M> {
    /// Creates a context for one rank.
    ///
    /// This is the engine SPI: algorithm code receives a ready-made
    /// context, but engine implementations (the in-crate [`SimEngine`]/
    /// [`ThreadedEngine`](crate::ThreadedEngine) and out-of-crate
    /// transports such as `cmg-net`) construct one per rank and drive
    /// it with [`RankCtx::set_now`]/[`RankCtx::end_round_into`].
    ///
    /// [`SimEngine`]: crate::SimEngine
    pub fn new(
        rank: Rank,
        num_ranks: Rank,
        bundling: bool,
        recorder: cmg_obs::RecorderHandle,
    ) -> Self {
        RankCtx {
            rank,
            num_ranks,
            round: 0,
            work: 0,
            outbox: OutBox::for_ranks(bundling, num_ranks),
            recorder,
            now: 0.0,
            self_sends: 0,
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total number of ranks in the run.
    #[inline]
    pub fn num_ranks(&self) -> Rank {
        self.num_ranks
    }

    /// Current round number (0 = the `on_start` round).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends `msg` to `dst`; it is delivered at the start of the next
    /// round. Self-sends (`dst == rank`) are allowed and also arrive
    /// next round — they are counted in [`RankCtx::self_sends`] so
    /// exploration harnesses can see they entered the schedule.
    #[inline]
    pub fn send(&mut self, dst: Rank, msg: &M) {
        debug_assert!(
            dst < self.num_ranks,
            "rank {} sent to nonexistent rank {dst} (num_ranks = {})",
            self.rank,
            self.num_ranks
        );
        if dst == self.rank {
            self.self_sends += 1;
        }
        self.outbox.push(dst, msg);
    }

    /// How many messages this rank has addressed to itself so far.
    /// Self-sends are legal but rare; the `Scripted` DFS in the
    /// exploration harness fingerprints their deliveries like any
    /// other packet, and this counter lets tests assert they occurred.
    #[inline]
    pub fn self_sends(&self) -> u64 {
        self.self_sends
    }

    /// Charges `units` of compute work against the cost model (one unit ≈
    /// one adjacency entry touched).
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.work += units;
    }

    /// Whether an event recorder is attached (one cached-bool check).
    /// Programs can use this to skip counter bookkeeping that only
    /// feeds events.
    #[inline]
    pub fn observed(&self) -> bool {
        self.recorder.enabled()
    }

    /// Emits a structured event from this rank at the current engine
    /// time. Free (a single branch) when no recorder is attached.
    #[inline]
    pub fn emit(&self, event: cmg_obs::Event) {
        self.recorder.emit(self.rank, self.now, event);
    }

    /// Engine SPI: updates the timestamp used for emitted events.
    pub fn set_now(&mut self, now: f64) {
        self.now = now;
    }

    /// Engine SPI: positions the round counter mid-run. Used by
    /// checkpoint restore — a transport that revives a rank from a
    /// snapshot taken at round edge `round` resumes the context there,
    /// so `ctx.round()` (and everything derived from it) continues
    /// bit-identically.
    pub fn resume_at(&mut self, round: u64) {
        self.round = round;
    }

    /// Engine SPI: advances the round counter and drains the round's
    /// work and packets.
    pub fn end_round(&mut self) -> (u64, Vec<crate::bundle::Packet>) {
        let mut packets = Vec::new();
        let work = self.end_round_into(&mut packets);
        (work, packets)
    }

    /// Engine SPI, allocation-aware twin of [`RankCtx::end_round`]:
    /// appends the round's packets to the caller's recycled buffer
    /// (which must be empty) and returns the charged work.
    pub fn end_round_into(&mut self, packets: &mut Vec<crate::bundle::Packet>) -> u64 {
        self.round += 1;
        self.outbox.finish_into(packets);
        std::mem::take(&mut self.work)
    }
}

/// A distributed algorithm, from one rank's point of view.
///
/// The engine calls [`RankProgram::on_start`] once (round 0), then
/// [`RankProgram::on_round`] every round with the messages delivered to
/// this rank, until every rank is [`Status::Idle`] and no packets are in
/// flight.
///
/// # State contract
///
/// Every program's algorithm state is an explicit serializable value:
/// [`RankProgram::snapshot`] captures it as a
/// [`ProgramSnapshot`](crate::snapshot::ProgramSnapshot) record stream
/// and [`RankProgram::restore`] rebuilds the program from a snapshot
/// plus its construction context ([`RankProgram::Meta`] — graphs,
/// configs, anything *not* carried on the wire). Taken at a round edge,
/// `restore(meta, snapshot)` must resume **bit-identically**: results,
/// statistics, and traces of the resumed run must equal the
/// uninterrupted run's. The engines verify this live when
/// `EngineConfig::checkpoint_every` is set, and the cmg-net supervisor
/// relies on it to respawn dead ranks from their last checkpoint.
pub trait RankProgram: Send {
    /// The algorithm's message type.
    type Msg: WireMessage;

    /// Serializable algorithm state: pointers, proposals, palettes,
    /// phase counters, in-flight collective state. Incidental state
    /// (halo views, scratch buffers) stays out and is rebuilt by
    /// [`RankProgram::restore`].
    type Snapshot: crate::snapshot::ProgramSnapshot;

    /// Construction context needed to rebuild the incidental state on
    /// restore (typically the rank's `DistGraph` plus configuration).
    /// Not serialized — the transport already owns it.
    type Meta: Send;

    /// Round 0: initialize and send the first messages.
    fn on_start(&mut self, ctx: &mut RankCtx<Self::Msg>) -> Status;

    /// One round: process `inbox` (messages sent to this rank last round,
    /// grouped by source and sorted by source rank for determinism), do
    /// local work, send messages.
    fn on_round(
        &mut self,
        inbox: &mut Vec<(Rank, Vec<Self::Msg>)>,
        ctx: &mut RankCtx<Self::Msg>,
    ) -> Status;

    /// Captures the program's algorithm state at a round edge.
    fn snapshot(&self) -> Self::Snapshot;

    /// Appends the encoded snapshot to `out` — the same bytes as
    /// `self.snapshot().encode_into(out)`, which is also the default.
    /// This is the checkpoint hot path: the net worker serializes the
    /// program at every checkpoint edge while peers wait at the
    /// barrier, so programs with bulky state override this to encode
    /// straight out of their live buffers (no intermediate snapshot
    /// clone). Overrides must stay byte-identical to the default.
    fn encode_snapshot_into(&self, out: &mut Vec<u8>) {
        use crate::snapshot::ProgramSnapshot;
        self.snapshot().encode_into(out);
    }

    /// Rebuilds a program from construction context plus a snapshot.
    /// Must be the exact inverse of [`RankProgram::snapshot`]: the
    /// restored program behaves bit-identically to the captured one.
    fn restore(meta: Self::Meta, snap: Self::Snapshot) -> Self;

    /// Extracts fresh construction context from a live program, so
    /// engines can roundtrip `snapshot → restore` generically (the
    /// sim/threaded `checkpoint_every` equivalence oracle).
    fn meta(&self) -> Self::Meta;
}

/// Warm-start contract: the serving-layer sibling of the snapshot
/// contract.
///
/// Where [`RankProgram::restore`] rebuilds a program *exactly* (same
/// graph, bit-identical resumption), `reseed` rebuilds it **under a
/// changed graph**: the caller retains a globally consistent view of
/// the previous run's result (`Retained` — e.g. the global mate vector
/// plus the set of invalidated vertices), and `reseed` constructs a
/// program whose non-invalidated state is pre-resolved, so the next
/// engine run only does protocol work on the dirty frontier. Every
/// rank must be reseeded from the *same* retained view: ghost states
/// derived from it are then consistent across ranks without any
/// catch-up communication.
///
/// Unlike restore, reseeded runs are not bit-identical to cold runs —
/// they promise *result* equivalence (the cmg-check oracles, and exact
/// result equality where the algorithm's fixed point is unique, e.g.
/// matching under distinct weights). See DESIGN.md §13.
pub trait WarmStart: RankProgram + Sized {
    /// The globally consistent retained state a reseed draws from.
    type Retained: ?Sized;

    /// Builds a program over `meta` (the rank's construction context on
    /// the *new* graph) with retained state pre-applied and only the
    /// invalidated frontier left active.
    fn reseed(meta: Self::Meta, retained: &Self::Retained) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_accumulates_work_and_packets() {
        let mut ctx: RankCtx<u32> = RankCtx::new(2, 4, true, cmg_obs::RecorderHandle::noop());
        assert_eq!(ctx.rank(), 2);
        assert_eq!(ctx.num_ranks(), 4);
        assert_eq!(ctx.round(), 0);
        ctx.charge(10);
        ctx.charge(5);
        ctx.send(0, &1);
        ctx.send(0, &2);
        ctx.send(3, &3);
        let (work, packets) = ctx.end_round();
        assert_eq!(work, 15);
        assert_eq!(packets.len(), 2);
        assert_eq!(ctx.round(), 1);
        let (work2, packets2) = ctx.end_round();
        assert_eq!(work2, 0);
        assert!(packets2.is_empty());
    }
}
