//! Deterministic discrete-event simulation engine.
//!
//! Runs any number of ranks on one host, advancing a per-rank virtual clock
//! according to the [`crate::CostModel`]. This is how the repository
//! reproduces the paper's 16,384-processor Blue Gene/P experiments: the
//! algorithms execute for real (producing a real matching / coloring), only
//! *time* is simulated.
//!
//! Timing model, per round and rank:
//! 1. delivery — the rank's clock jumps to the latest arrival among the
//!    packets it consumes (asynchronous wait-for-data);
//! 2. compute — the clock advances by γ · (charged work);
//! 3. send — each produced packet adds the sender overhead to the clock and
//!    is timestamped to arrive at `clock + α + β·bytes`;
//! 4. optionally (sync mode) a barrier max-synchronizes all clocks and adds
//!    `α·⌈log₂ p⌉`.
//!
//! # Scheduling
//!
//! The round loop is event-driven: the engine keeps an explicit **worklist**
//! of runnable ranks (status [`Status::Active`] or a non-empty mailbox) and
//! steps only those, so a quiet round costs O(active), not O(p). Produced
//! packets are routed straight onto the next round's worklist (deduplicated
//! by a round-stamped mark table, then rank-sorted so routing order — and
//! therefore every mailbox, virtual time, and trace byte — matches the
//! dense 0..p sweep). Round aggregates (stepped ranks, packets, bytes,
//! max virtual time) are maintained incrementally instead of re-folding all
//! p slots. Under `parallel_sim` a **persistent worker pool** is spawned
//! once per run; workers park between rounds and claim worklist chunks via
//! an atomic cursor, replacing the per-round thread-spawn of the original
//! implementation. Results are bit-identical across all three paths
//! (serial, pooled, and the [`SimEngine::run_dense_reference`] baseline);
//! `tests/scheduler_equivalence.rs` holds the property test pinning this.

use crate::bundle::Packet;
use crate::delivery::{payload_fingerprint, DeliveryKey, DeliveryPolicy};
use crate::message::{decode_all, decode_all_into};
use crate::program::{Rank, RankCtx, RankProgram, Status};
use crate::stats::{RankStats, RunStats};
use crate::{CostModel, EngineConfig};
use bytes::Bytes;
use cmg_obs::{Event, PhaseName, RecorderHandle, SchedStats, ENGINE_RANK};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A packet in flight, with its computed arrival time.
struct InFlight {
    src: Rank,
    arrival: f64,
    payload: Bytes,
    logical: u32,
    /// Mailbox insertion index: makes the delivery sort key
    /// `(src, arrival, seq)` a total order, so an unstable sort
    /// reproduces the stable `(src, arrival)` sort exactly.
    seq: u32,
}

/// Per-rank simulation state.
struct Slot<P: RankProgram> {
    program: P,
    ctx: RankCtx<P::Msg>,
    status: Status,
    vtime: f64,
    stats: RankStats,
    mailbox: Vec<InFlight>,
    /// Packets a delaying [`DeliveryPolicy`] is holding back, paired with
    /// the round at which they become deliverable. Always empty under the
    /// default policy.
    withheld: Vec<(u64, InFlight)>,
    /// Recycled per-source inbox handed to `on_round` (outer vector
    /// reused across rounds; cleared after each step).
    inbox: Vec<(Rank, Vec<<P as RankProgram>::Msg>)>,
    /// Recycled buffer the outbox drains into each round.
    packet_buf: Vec<Packet>,
    /// Packets produced this round with their arrival timestamps, drained
    /// by the (serial, deterministic) routing pass.
    produced: Vec<(Packet, f64)>,
}

/// Aggregate counters of one simulation round (recorded when
/// `EngineConfig::record_trace` is set).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundTrace {
    /// Round number (0 = the `on_start` round).
    pub round: u64,
    /// Ranks that actually stepped.
    pub ranks_stepped: u64,
    /// Wire packets produced this round.
    pub packets: u64,
    /// Logical messages produced this round.
    pub messages: u64,
    /// Payload bytes produced this round.
    pub bytes: u64,
    /// Maximum per-rank virtual time after the round.
    pub max_virtual_time: f64,
}

/// Result of a simulated run: the final rank programs (holding the computed
/// matching/coloring) plus execution statistics.
pub struct SimResult<P> {
    /// Final per-rank program state.
    pub programs: Vec<P>,
    /// Execution statistics (virtual times, message counts, …).
    pub stats: RunStats,
    /// `true` if the run stopped because it hit `max_rounds` instead of
    /// quiescing.
    pub hit_round_cap: bool,
    /// Per-round trace (empty unless `EngineConfig::record_trace`).
    pub trace: Vec<RoundTrace>,
    /// Scheduler-occupancy counters: worklist sizes, skipped ranks, and
    /// worker-pool usage (all zero from the dense reference path).
    pub sched: SchedStats,
}

/// The simulation engine. See the module docs.
pub struct SimEngine<P: RankProgram> {
    slots: Vec<Slot<P>>,
    config: EngineConfig,
}

/// Applies a non-default [`DeliveryPolicy`] to a rank's incoming mail:
/// withholds newly delayed packets, re-injects ones that have become due,
/// then permutes delivery order. Leaves `mailbox` in final delivery order
/// (the caller must not re-sort it). Shared verbatim by the scheduled
/// loop and the dense reference, so the two stay bit-identical under
/// every policy.
fn apply_delivery_policy(
    policy: &DeliveryPolicy,
    rank: Rank,
    round: u64,
    mailbox: &mut Vec<InFlight>,
    withheld: &mut Vec<(u64, InFlight)>,
) {
    // Withhold before re-injection so a released packet is never
    // re-delayed (which would starve it forever).
    let mut i = 0;
    while i < mailbox.len() {
        let hold = policy.hold_rounds(rank, round, mailbox[i].src);
        if hold > 0 {
            let pkt = mailbox.remove(i);
            withheld.push((round + hold, pkt));
        } else {
            i += 1;
        }
    }
    // Release due packets in withhold order (per-source FIFO: a source's
    // traffic is delayed uniformly, so hold order is send order).
    let mut i = 0;
    while i < withheld.len() {
        if withheld[i].0 <= round {
            let (_, pkt) = withheld.remove(i);
            mailbox.push(pkt);
        } else {
            i += 1;
        }
    }
    if mailbox.len() <= 1 {
        return;
    }
    // Canonical baseline order. Merged withheld + fresh packets may carry
    // colliding `seq` values (each round restarts the counter), so a
    // stable sort resolves ties by the deterministic merge order above.
    mailbox.sort_by(|a, b| {
        a.src
            .cmp(&b.src)
            .then(a.arrival.total_cmp(&b.arrival))
            .then(a.seq.cmp(&b.seq))
    });
    let hash_payloads = policy.wants_payload_hash();
    let keys: Vec<DeliveryKey> = mailbox
        .iter()
        .map(|m| DeliveryKey {
            src: m.src,
            arrival: m.arrival,
            seq: m.seq,
            bytes: m.payload.len() as u64,
            payload_hash: if hash_payloads {
                payload_fingerprint(&m.payload)
            } else {
                0
            },
        })
        .collect();
    if let Some(perm) = policy.permutation(rank, round, &keys) {
        debug_assert!(
            crate::delivery::preserves_source_fifo(&keys, &perm),
            "delivery policy broke per-source FIFO (MPI non-overtaking): {perm:?}"
        );
        let mut staged: Vec<Option<InFlight>> = mailbox.drain(..).map(Some).collect();
        for idx in perm {
            if let Some(pkt) = staged.get_mut(idx).and_then(Option::take) {
                mailbox.push(pkt);
            }
        }
        // A malformed permutation (release build, asserts off) must not
        // lose packets: deliver any leftovers in canonical order.
        for pkt in staged.into_iter().flatten() {
            mailbox.push(pkt);
        }
    }
}

/// Steps one rank: deliver its mailbox, run the program, timestamp the
/// produced packets. Pure per-slot work — both the serial scheduler and
/// the worker pool funnel through this.
///
/// `floor` is the synchronized-clock lower bound (the previous round's
/// barrier time under `sync_rounds`, 0 otherwise): a slot that skipped
/// rounds while the barrier advanced catches its clock up lazily here.
fn step_slot<P: RankProgram>(
    slot: &mut Slot<P>,
    cost: CostModel,
    recorder: &RecorderHandle,
    policy: &DeliveryPolicy,
    round: u64,
    first: bool,
    floor: f64,
) {
    if floor > slot.vtime {
        slot.vtime = floor;
    }
    let rank = slot.ctx.rank();
    let observed = recorder.enabled();
    if !policy.is_default() && (!slot.mailbox.is_empty() || !slot.withheld.is_empty()) {
        apply_delivery_policy(policy, rank, round, &mut slot.mailbox, &mut slot.withheld);
    }
    // Deliver: jump the clock to the latest consumed arrival.
    let delivery_start = slot.vtime;
    let had_mail = !slot.mailbox.is_empty();
    if had_mail {
        // hot-path: begin (delivery — recycled buffers, no allocation)
        // 0/1-packet mailboxes (the common case on interior-heavy
        // rounds) skip the sort; larger ones use an unstable sort on
        // the total (src, arrival, seq) key — see [`InFlight::seq`].
        // Non-default policies already left the mailbox in delivery
        // order above.
        if policy.is_default() && slot.mailbox.len() > 1 {
            slot.mailbox.sort_unstable_by(|a, b| {
                a.src
                    .cmp(&b.src)
                    .then(a.arrival.total_cmp(&b.arrival))
                    .then(a.seq.cmp(&b.seq))
            });
        }
        let Slot {
            mailbox,
            stats,
            vtime,
            inbox,
            ..
        } = slot;
        for m in mailbox.iter() {
            *vtime = vtime.max(m.arrival);
        }
        for m in mailbox.drain(..) {
            stats.packets_received += 1;
            stats.bytes_received += m.payload.len() as u64;
            stats.messages_received += m.logical as u64;
            if observed {
                recorder.emit(
                    rank,
                    m.arrival,
                    Event::PacketRecv {
                        src: m.src,
                        bytes: m.payload.len() as u64,
                        logical: m.logical,
                    },
                );
            }
            // Decode straight into the per-source message list (no
            // per-packet temporary vector).
            let list = match inbox.last_mut() {
                Some((src, list)) if *src == m.src => list,
                _ => {
                    inbox.push((m.src, Vec::new()));
                    &mut inbox.last_mut().expect("just pushed").1
                }
            };
            decode_all_into(m.payload, list)
                .expect("malformed bundle: WireMessage encode/decode mismatch");
        }
        // hot-path: end (delivery)
        if observed {
            recorder.emit(
                rank,
                slot.vtime,
                Event::Phase {
                    name: PhaseName::Delivery,
                    start: delivery_start,
                    dur: slot.vtime - delivery_start,
                },
            );
        }
    }
    // Compute.
    let compute_start = slot.vtime;
    slot.ctx.set_now(compute_start);
    slot.status = if first {
        slot.program.on_start(&mut slot.ctx)
    } else {
        slot.program.on_round(&mut slot.inbox, &mut slot.ctx)
    };
    slot.inbox.clear();
    let work = slot.ctx.end_round_into(&mut slot.packet_buf);
    slot.stats.rounds_active += 1;
    slot.stats.work += work;
    slot.vtime += cost.compute_time(work);
    if observed {
        recorder.emit(
            rank,
            slot.vtime,
            Event::Phase {
                name: PhaseName::Compute,
                start: compute_start,
                dur: slot.vtime - compute_start,
            },
        );
    }
    // Send: overhead advances the sender; transfer delays arrival.
    let send_start = slot.vtime;
    let Slot {
        packet_buf,
        produced,
        stats,
        vtime,
        ..
    } = slot;
    debug_assert!(produced.is_empty(), "unrouted packets from a prior round");
    for packet in packet_buf.drain(..) {
        stats.packets_sent += 1;
        stats.messages_sent += packet.logical as u64;
        stats.bytes_sent += packet.payload.len() as u64;
        *vtime += cost.send_overhead;
        if observed {
            recorder.emit(
                rank,
                *vtime,
                Event::PacketSent {
                    dst: packet.dst,
                    bytes: packet.payload.len() as u64,
                    logical: packet.logical,
                },
            );
        }
        let arrival = *vtime + cost.transfer_time(packet.payload.len());
        produced.push((packet, arrival));
    }
    if observed && !slot.produced.is_empty() {
        recorder.emit(
            rank,
            slot.vtime,
            Event::Phase {
                name: PhaseName::Send,
                start: send_start,
                dur: slot.vtime - send_start,
            },
        );
    }
}

/// Checkpoint equivalence oracle: round-trips a program through
/// `snapshot → encode → decode → restore` in place. Called at every
/// `checkpoint_every` round edge; since the run must stay bit-identical
/// to an uninterrupted one, any algorithm state missing from the
/// snapshot (or mangled by its codec) surfaces as a test divergence
/// instead of a production deadlock.
fn checkpoint_roundtrip<P: RankProgram>(program: &mut P) {
    use crate::snapshot::ProgramSnapshot;
    let meta = program.meta();
    let bytes = program.snapshot().encode_bytes();
    let snap = <P::Snapshot as ProgramSnapshot>::decode_bytes(bytes)
        .expect("snapshot did not round-trip through its wire encoding");
    *program = P::restore(meta, snap);
}

/// One round's worth of work published to the worker pool. Raw pointers
/// instead of borrows because the pool outlives any single round's
/// worklist; validity is re-established at every dispatch.
struct PoolJob<P: RankProgram> {
    generation: u64,
    shutdown: bool,
    slots: *mut Slot<P>,
    worklist: *const Rank,
    len: usize,
    chunk: usize,
    round: u64,
    first: bool,
    floor: f64,
}

impl<P: RankProgram> Clone for PoolJob<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: RankProgram> Copy for PoolJob<P> {}

// SAFETY: the pointers are only dereferenced by workers between a
// dispatch and its completion signal, both of which are mutex-ordered
// with the driver publishing them.
unsafe impl<P: RankProgram> Send for PoolJob<P> {}

/// The persistent worker pool: spawned once per [`SimEngine::run`],
/// workers park on a condvar between rounds and claim disjoint worklist
/// chunks through an atomic cursor.
struct WorkerPool<P: RankProgram> {
    job: Mutex<PoolJob<P>>,
    start: Condvar,
    running: Mutex<usize>,
    done: Condvar,
    cursor: AtomicUsize,
    chunks_claimed: AtomicU64,
    workers: usize,
}

impl<P: RankProgram> WorkerPool<P> {
    fn new(workers: usize) -> Self {
        WorkerPool {
            job: Mutex::new(PoolJob {
                generation: 0,
                shutdown: false,
                slots: std::ptr::null_mut(),
                worklist: std::ptr::null(),
                len: 0,
                chunk: 1,
                round: 0,
                first: false,
                floor: 0.0,
            }),
            start: Condvar::new(),
            running: Mutex::new(0),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            chunks_claimed: AtomicU64::new(0),
            workers,
        }
    }

    /// Worker body: park until a new generation (or shutdown) is
    /// published, then claim and step worklist chunks until the cursor
    /// runs off the end.
    fn worker_loop(&self, cost: CostModel, recorder: RecorderHandle, policy: DeliveryPolicy) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut guard = self.job.lock().expect("pool poisoned");
                while !guard.shutdown && guard.generation == seen {
                    guard = self.start.wait(guard).expect("pool poisoned");
                }
                if guard.shutdown {
                    return;
                }
                seen = guard.generation;
                *guard
            };
            let mut claimed = 0u64;
            loop {
                let begin = self.cursor.fetch_add(job.chunk, Ordering::Relaxed);
                if begin >= job.len {
                    break;
                }
                claimed += 1;
                let end = (begin + job.chunk).min(job.len);
                for i in begin..end {
                    // SAFETY: the worklist holds deduplicated ranks and
                    // the atomic cursor hands each index range to exactly
                    // one worker, so slot accesses are disjoint; the
                    // driver publishes the pointers before bumping the
                    // generation and does not touch the slots until every
                    // worker has signalled completion.
                    unsafe {
                        let rank = *job.worklist.add(i) as usize;
                        step_slot(
                            &mut *job.slots.add(rank),
                            cost,
                            &recorder,
                            &policy,
                            job.round,
                            job.first,
                            job.floor,
                        );
                    }
                }
            }
            if claimed > 0 {
                self.chunks_claimed.fetch_add(claimed, Ordering::Relaxed);
            }
            let mut running = self.running.lock().expect("pool poisoned");
            *running -= 1;
            if *running == 0 {
                self.done.notify_one();
            }
        }
    }

    /// Runs one round's worklist on the pool and blocks until every
    /// worker is parked again.
    fn dispatch(
        &self,
        slots: *mut Slot<P>,
        worklist: &[Rank],
        round: u64,
        first: bool,
        floor: f64,
    ) {
        self.cursor.store(0, Ordering::Relaxed);
        *self.running.lock().expect("pool poisoned") = self.workers;
        {
            let mut guard = self.job.lock().expect("pool poisoned");
            guard.generation += 1;
            guard.slots = slots;
            guard.worklist = worklist.as_ptr();
            guard.len = worklist.len();
            guard.chunk = (worklist.len() / (self.workers * 4)).clamp(1, 256);
            guard.round = round;
            guard.first = first;
            guard.floor = floor;
        }
        self.start.notify_all();
        let mut running = self.running.lock().expect("pool poisoned");
        while *running > 0 {
            running = self.done.wait(running).expect("pool poisoned");
        }
    }

    fn shutdown(&self) {
        self.job.lock().expect("pool poisoned").shutdown = true;
        self.start.notify_all();
    }
}

impl<P: RankProgram> SimEngine<P> {
    /// Creates an engine over one program per rank (rank = index).
    pub fn new(programs: Vec<P>, config: EngineConfig) -> Self {
        let p = programs.len() as Rank;
        let slots = programs
            .into_iter()
            .enumerate()
            .map(|(r, program)| Slot {
                program,
                ctx: RankCtx::new(r as Rank, p, config.bundling, config.recorder.clone()),
                status: Status::Active,
                vtime: 0.0,
                stats: RankStats::default(),
                mailbox: Vec::new(),
                withheld: Vec::new(),
                inbox: Vec::new(),
                packet_buf: Vec::new(),
                produced: Vec::new(),
            })
            .collect();
        SimEngine { slots, config }
    }

    /// Runs to quiescence (or the round cap) and returns the result.
    pub fn run(self) -> SimResult<P> {
        let p = self.slots.len();
        // Scripted delivery policies may carry interior state whose
        // consultation order must be deterministic — serial only.
        if self.config.parallel_sim && p >= 4 && !self.config.delivery.requires_serial() {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(p);
            if workers > 1 {
                return self.run_with_pool(workers);
            }
        }
        self.run_scheduled(None)
    }

    /// Spawns the persistent pool, runs the scheduled loop against it,
    /// then parks and joins the workers.
    fn run_with_pool(self, workers: usize) -> SimResult<P> {
        let pool: WorkerPool<P> = WorkerPool::new(workers);
        let cost = self.config.cost;
        let recorder = self.config.recorder.clone();
        let policy = self.config.delivery.clone();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let pool = &pool;
                let recorder = recorder.clone();
                let policy = policy.clone();
                scope.spawn(move || pool.worker_loop(cost, recorder, policy));
            }
            let result = self.run_scheduled(Some(&pool));
            pool.shutdown();
            result
        })
    }

    /// The active-set round loop (see the module docs). `pool` is the
    /// persistent worker pool, or `None` to step on this thread.
    fn run_scheduled(mut self, pool: Option<&WorkerPool<P>>) -> SimResult<P> {
        let p = self.slots.len();
        let mut rounds: u64 = 0;
        let mut hit_round_cap = false;
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut sched = SchedStats {
            pool_workers: pool.map_or(0, |pl| pl.workers as u64),
            ..SchedStats::default()
        };

        let recorder = self.config.recorder.clone();
        let cost = self.config.cost;
        let policy = self.config.delivery.clone();

        // The active set: every rank with status `Active` or a non-empty
        // mailbox, always sorted ascending (routing order determinism).
        // Round 0 steps everyone.
        let mut worklist: Vec<Rank> = (0..p as Rank).collect();
        let mut next_worklist: Vec<Rank> = Vec::new();
        // Round-stamped membership marks for O(1) worklist dedup.
        let mut enqueued: Vec<u64> = vec![0; p];
        // Incrementally maintained max over all per-rank virtual times
        // (exact: vtime is monotone per rank, so the max over stepped
        // ranks folded into the previous max equals the full fold).
        let mut max_vtime: f64 = 0.0;
        // Synchronized-clock lower bound under `sync_rounds`.
        let mut floor: f64 = 0.0;
        // Routing scratch, swapped with each slot's `produced` so both
        // allocations survive across rounds.
        let mut produced_scratch: Vec<(Packet, f64)> = Vec::new();

        if p > 0 {
            loop {
                let first = rounds == 0;
                if let Some(k) = self.config.checkpoint_every.filter(|&k| k > 0) {
                    if !first && rounds.is_multiple_of(k) {
                        for slot in &mut self.slots {
                            checkpoint_roundtrip(&mut slot.program);
                        }
                    }
                }
                if recorder.enabled() {
                    recorder.emit(
                        ENGINE_RANK,
                        max_vtime,
                        Event::RoundStart {
                            round: rounds as u32,
                        },
                    );
                }

                sched.rounds += 1;
                sched.worklist_total += worklist.len() as u64;
                sched.worklist_max = sched.worklist_max.max(worklist.len() as u64);
                sched.ranks_skipped_total += (p - worklist.len()) as u64;
                match pool {
                    Some(pl) if worklist.len() >= 4 => {
                        sched.pool_parallel_rounds += 1;
                        pl.dispatch(self.slots.as_mut_ptr(), &worklist, rounds, first, floor);
                    }
                    _ => {
                        if pool.is_some() {
                            sched.pool_serial_rounds += 1;
                        }
                        for &r in &worklist {
                            step_slot(
                                &mut self.slots[r as usize],
                                cost,
                                &recorder,
                                &policy,
                                rounds,
                                first,
                                floor,
                            );
                        }
                    }
                }
                let stepped = worklist.len() as u64;
                for &r in &worklist {
                    let v = self.slots[r as usize].vtime;
                    if v > max_vtime {
                        max_vtime = v;
                    }
                }

                // Route produced packets into destination mailboxes and
                // onto the next worklist. Worklist order is ascending, so
                // mailbox push order matches the dense 0..p sweep.
                // hot-path: begin (routing — recycled scratch, no allocation)
                let stamp = rounds + 1;
                let (mut pkts, mut msgs, mut bytes) = (0u64, 0u64, 0u64);
                debug_assert!(next_worklist.is_empty());
                for &r in &worklist {
                    let src_slot = &mut self.slots[r as usize];
                    // A rank stays runnable while it is `Active` or a
                    // delaying policy still withholds mail for it.
                    if (src_slot.status == Status::Active || !src_slot.withheld.is_empty())
                        && enqueued[r as usize] != stamp
                    {
                        enqueued[r as usize] = stamp;
                        next_worklist.push(r);
                    }
                    if src_slot.produced.is_empty() {
                        continue;
                    }
                    std::mem::swap(&mut produced_scratch, &mut src_slot.produced);
                    for (packet, arrival) in produced_scratch.drain(..) {
                        pkts += 1;
                        msgs += packet.logical as u64;
                        bytes += packet.payload.len() as u64;
                        let dst = packet.dst as usize;
                        if enqueued[dst] != stamp {
                            enqueued[dst] = stamp;
                            next_worklist.push(packet.dst);
                        }
                        let mailbox = &mut self.slots[dst].mailbox;
                        let seq = mailbox.len() as u32;
                        mailbox.push(InFlight {
                            src: r,
                            arrival,
                            payload: packet.payload,
                            logical: packet.logical,
                            seq,
                        });
                    }
                    std::mem::swap(&mut produced_scratch, &mut self.slots[r as usize].produced);
                }
                // hot-path: end (routing)

                if self.config.record_trace {
                    trace.push(RoundTrace {
                        round: rounds,
                        ranks_stepped: stepped,
                        packets: pkts,
                        messages: msgs,
                        bytes,
                        max_virtual_time: max_vtime,
                    });
                }
                rounds += 1;

                if self.config.sync_rounds {
                    floor = max_vtime + self.config.cost.barrier_time(p);
                    max_vtime = floor;
                }

                if recorder.enabled() {
                    recorder.emit(
                        ENGINE_RANK,
                        max_vtime,
                        Event::RoundEnd {
                            round: rounds as u32 - 1,
                            active_ranks: stepped as u32,
                        },
                    );
                }

                // Double-buffer swap; sort restores ascending order.
                std::mem::swap(&mut worklist, &mut next_worklist);
                next_worklist.clear();
                worklist.sort_unstable();

                // Empty worklist ⟺ all ranks idle and nothing in flight.
                if worklist.is_empty() {
                    break;
                }
                if rounds >= self.config.max_rounds {
                    hit_round_cap = true;
                    break;
                }
            }
        }
        if let Some(pl) = pool {
            sched.pool_chunks_claimed = pl.chunks_claimed.load(Ordering::Relaxed);
        }

        let mut per_rank = Vec::with_capacity(p);
        let mut programs = Vec::with_capacity(p);
        for mut s in self.slots {
            // Ranks that skipped the last rounds catch up to the final
            // barrier time here (no-op when `sync_rounds` is off).
            s.stats.virtual_time = if floor > s.vtime { floor } else { s.vtime };
            per_rank.push(s.stats);
            programs.push(s.program);
        }
        let stats = RunStats { per_rank, rounds };
        // Debug builds verify send/receive conservation on every clean
        // run; a run cut off by the round cap legitimately has packets
        // still in flight.
        #[cfg(debug_assertions)]
        if !hit_round_cap {
            stats.assert_conservation();
        }
        SimResult {
            programs,
            stats,
            hit_round_cap,
            trace,
            sched,
        }
    }

    /// The pre-scheduler dense round loop, kept verbatim as the reference
    /// implementation: every round folds over all `p` slots and respawns
    /// scoped threads. `tests/scheduler_equivalence.rs` asserts
    /// [`SimEngine::run`] reproduces its results bit-for-bit, and the
    /// `engine_overhead` bench measures the speedup against it. Not part
    /// of the supported API.
    #[doc(hidden)]
    pub fn run_dense_reference(mut self) -> SimResult<P> {
        let p = self.slots.len();
        let mut rounds: u64 = 0;
        let mut hit_round_cap = false;
        let mut trace: Vec<RoundTrace> = Vec::new();

        let recorder = self.config.recorder.clone();
        if p > 0 {
            loop {
                let first = rounds == 0;
                if let Some(k) = self.config.checkpoint_every.filter(|&k| k > 0) {
                    if !first && rounds.is_multiple_of(k) {
                        for slot in &mut self.slots {
                            checkpoint_roundtrip(&mut slot.program);
                        }
                    }
                }
                let active_before: u64 = if recorder.enabled() {
                    let t = self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max);
                    recorder.emit(
                        ENGINE_RANK,
                        t,
                        Event::RoundStart {
                            round: rounds as u32,
                        },
                    );
                    self.slots.iter().map(|s| s.stats.rounds_active).sum()
                } else {
                    0
                };
                let before: (u64, u64, u64, u64) = if self.config.record_trace {
                    self.slots.iter().fold((0, 0, 0, 0), |acc, s| {
                        (
                            acc.0 + s.stats.rounds_active,
                            acc.1 + s.stats.packets_sent,
                            acc.2 + s.stats.messages_sent,
                            acc.3 + s.stats.bytes_sent,
                        )
                    })
                } else {
                    (0, 0, 0, 0)
                };
                self.dense_step_all(rounds, first);
                if self.config.record_trace {
                    let after = self.slots.iter().fold((0, 0, 0, 0), |acc, s| {
                        (
                            acc.0 + s.stats.rounds_active,
                            acc.1 + s.stats.packets_sent,
                            acc.2 + s.stats.messages_sent,
                            acc.3 + s.stats.bytes_sent,
                        )
                    });
                    trace.push(RoundTrace {
                        round: rounds,
                        ranks_stepped: after.0 - before.0,
                        packets: after.1 - before.1,
                        messages: after.2 - before.2,
                        bytes: after.3 - before.3,
                        max_virtual_time: self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max),
                    });
                }
                rounds += 1;

                if self.config.sync_rounds {
                    let tmax = self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max)
                        + self.config.cost.barrier_time(p);
                    for s in &mut self.slots {
                        s.vtime = tmax;
                    }
                }

                // Route produced packets into destination mailboxes
                // (rank-ordered: deterministic). Withheld packets count
                // as in flight: a delaying policy must not fake quiescence.
                let mut any_in_flight = false;
                for r in 0..p {
                    any_in_flight |= !self.slots[r].withheld.is_empty();
                    let produced = std::mem::take(&mut self.slots[r].produced);
                    for (packet, arrival) in produced {
                        any_in_flight = true;
                        let mailbox = &mut self.slots[packet.dst as usize].mailbox;
                        let seq = mailbox.len() as u32;
                        mailbox.push(InFlight {
                            src: r as Rank,
                            arrival,
                            payload: packet.payload,
                            logical: packet.logical,
                            seq,
                        });
                    }
                }

                if recorder.enabled() {
                    let stepped: u64 = self
                        .slots
                        .iter()
                        .map(|s| s.stats.rounds_active)
                        .sum::<u64>()
                        - active_before;
                    let t = self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max);
                    recorder.emit(
                        ENGINE_RANK,
                        t,
                        Event::RoundEnd {
                            round: rounds as u32 - 1,
                            active_ranks: stepped as u32,
                        },
                    );
                }

                let all_idle = self.slots.iter().all(|s| s.status == Status::Idle);
                if all_idle && !any_in_flight {
                    break;
                }
                if rounds >= self.config.max_rounds {
                    hit_round_cap = true;
                    break;
                }
            }
        }

        let mut per_rank = Vec::with_capacity(p);
        let mut programs = Vec::with_capacity(p);
        for mut s in self.slots {
            s.stats.virtual_time = s.vtime;
            per_rank.push(s.stats);
            programs.push(s.program);
        }
        let stats = RunStats { per_rank, rounds };
        #[cfg(debug_assertions)]
        if !hit_round_cap {
            stats.assert_conservation();
        }
        SimResult {
            programs,
            stats,
            hit_round_cap,
            trace,
            sched: SchedStats::default(),
        }
    }

    /// Dense-reference step: scans every rank, skipping the quiescent
    /// ones one by one (the O(p)-per-round pattern the scheduler
    /// replaces).
    fn dense_step_all(&mut self, round: u64, first: bool) {
        let cost = self.config.cost;
        let recorder = self.config.recorder.clone();
        let policy = self.config.delivery.clone();
        let step_one = move |slot: &mut Slot<P>| {
            if !first
                && slot.status == Status::Idle
                && slot.mailbox.is_empty()
                && slot.withheld.is_empty()
            {
                return;
            }
            let rank = slot.ctx.rank();
            let observed = recorder.enabled();
            let default_policy = policy.is_default();
            if !default_policy && (!slot.mailbox.is_empty() || !slot.withheld.is_empty()) {
                apply_delivery_policy(&policy, rank, round, &mut slot.mailbox, &mut slot.withheld);
            }
            // Deliver: jump the clock to the latest consumed arrival.
            let delivery_start = slot.vtime;
            let mut inbox: Vec<(Rank, Vec<P::Msg>)> = Vec::new();
            let had_mail = !slot.mailbox.is_empty();
            if had_mail {
                let mut mail = std::mem::take(&mut slot.mailbox);
                if default_policy {
                    mail.sort_by(|a, b| a.src.cmp(&b.src).then(a.arrival.total_cmp(&b.arrival)));
                }
                for m in &mail {
                    slot.vtime = slot.vtime.max(m.arrival);
                }
                for m in mail {
                    slot.stats.packets_received += 1;
                    slot.stats.bytes_received += m.payload.len() as u64;
                    slot.stats.messages_received += m.logical as u64;
                    if observed {
                        recorder.emit(
                            rank,
                            m.arrival,
                            Event::PacketRecv {
                                src: m.src,
                                bytes: m.payload.len() as u64,
                                logical: m.logical,
                            },
                        );
                    }
                    let msgs: Vec<P::Msg> = decode_all(m.payload)
                        .expect("malformed bundle: WireMessage encode/decode mismatch");
                    match inbox.last_mut() {
                        Some((src, list)) if *src == m.src => list.extend(msgs),
                        _ => inbox.push((m.src, msgs)),
                    }
                }
                if observed {
                    recorder.emit(
                        rank,
                        slot.vtime,
                        Event::Phase {
                            name: PhaseName::Delivery,
                            start: delivery_start,
                            dur: slot.vtime - delivery_start,
                        },
                    );
                }
            }
            // Compute.
            let compute_start = slot.vtime;
            slot.ctx.set_now(compute_start);
            slot.status = if first {
                slot.program.on_start(&mut slot.ctx)
            } else {
                slot.program.on_round(&mut inbox, &mut slot.ctx)
            };
            let (work, packets) = slot.ctx.end_round();
            slot.stats.rounds_active += 1;
            slot.stats.work += work;
            slot.vtime += cost.compute_time(work);
            if observed {
                recorder.emit(
                    rank,
                    slot.vtime,
                    Event::Phase {
                        name: PhaseName::Compute,
                        start: compute_start,
                        dur: slot.vtime - compute_start,
                    },
                );
            }
            // Send: overhead advances the sender; transfer delays arrival.
            let send_start = slot.vtime;
            slot.produced = packets
                .into_iter()
                .map(|packet| {
                    slot.stats.packets_sent += 1;
                    slot.stats.messages_sent += packet.logical as u64;
                    slot.stats.bytes_sent += packet.payload.len() as u64;
                    slot.vtime += cost.send_overhead;
                    if observed {
                        recorder.emit(
                            rank,
                            slot.vtime,
                            Event::PacketSent {
                                dst: packet.dst,
                                bytes: packet.payload.len() as u64,
                                logical: packet.logical,
                            },
                        );
                    }
                    let arrival = slot.vtime + cost.transfer_time(packet.payload.len());
                    (packet, arrival)
                })
                .collect();
            if observed && !slot.produced.is_empty() {
                recorder.emit(
                    rank,
                    slot.vtime,
                    Event::Phase {
                        name: PhaseName::Send,
                        start: send_start,
                        dur: slot.vtime - send_start,
                    },
                );
            }
        };

        if self.config.parallel_sim && self.slots.len() >= 4 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.slots.len());
            let chunk = self.slots.len().div_ceil(threads);
            let step_one = &step_one;
            crossbeam::thread::scope(|scope| {
                for chunk_slots in self.slots.chunks_mut(chunk) {
                    scope.spawn(move |_| {
                        for slot in chunk_slots {
                            step_one(slot);
                        }
                    });
                }
            })
            .expect("sim worker panicked");
        } else {
            for slot in &mut self.slots {
                step_one(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank 0 sends `hops` tokens around the ring one at a time; every
    /// other rank forwards. Terminates when the token has moved `hops`
    /// times.
    #[derive(Clone)]
    struct RingToken {
        hops_left: u32,
        forwarded: u64,
    }

    impl RankProgram for RingToken {
        type Msg = u32;
        crate::trivial_snapshot!();

        fn on_start(&mut self, ctx: &mut RankCtx<u32>) -> Status {
            if ctx.rank() == 0 && self.hops_left > 0 {
                let next = (ctx.rank() + 1) % ctx.num_ranks();
                ctx.send(next, &(self.hops_left - 1));
            }
            Status::Idle
        }

        fn on_round(
            &mut self,
            inbox: &mut Vec<(Rank, Vec<u32>)>,
            ctx: &mut RankCtx<u32>,
        ) -> Status {
            for (_, msgs) in inbox.drain(..) {
                for hops in msgs {
                    self.forwarded += 1;
                    ctx.charge(1);
                    if hops > 0 {
                        let next = (ctx.rank() + 1) % ctx.num_ranks();
                        ctx.send(next, &(hops - 1));
                    }
                }
            }
            Status::Idle
        }
    }

    fn free_config() -> EngineConfig {
        EngineConfig {
            cost: crate::CostModel::compute_only(),
            ..Default::default()
        }
    }

    #[test]
    fn ring_token_terminates_and_counts() {
        let p = 4;
        let programs = (0..p)
            .map(|_| RingToken {
                hops_left: 10,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::new(programs, free_config()).run();
        assert!(!result.hit_round_cap);
        let total: u64 = result.programs.iter().map(|r| r.forwarded).sum();
        assert_eq!(total, 10);
        assert_eq!(result.stats.total_messages(), 10);
        assert_eq!(result.stats.total_work(), 10);
        // Every packet injected into a mailbox was delivered.
        result.stats.assert_conservation();
    }

    #[test]
    fn quiescent_program_stops_immediately() {
        #[derive(Clone)]
        struct Nop;
        impl RankProgram for Nop {
            type Msg = u32;
            crate::trivial_snapshot!();
            fn on_start(&mut self, _: &mut RankCtx<u32>) -> Status {
                Status::Idle
            }
            fn on_round(&mut self, _: &mut Vec<(Rank, Vec<u32>)>, _: &mut RankCtx<u32>) -> Status {
                panic!("must not be called");
            }
        }
        let result = SimEngine::new(vec![Nop, Nop], free_config()).run();
        assert_eq!(result.stats.rounds, 1);
    }

    #[test]
    fn round_cap_trips_on_livelock() {
        /// Sends itself a message forever.
        #[derive(Clone)]
        struct Livelock;
        impl RankProgram for Livelock {
            type Msg = u32;
            crate::trivial_snapshot!();
            fn on_start(&mut self, ctx: &mut RankCtx<u32>) -> Status {
                ctx.send(ctx.rank(), &0);
                Status::Idle
            }
            fn on_round(
                &mut self,
                _: &mut Vec<(Rank, Vec<u32>)>,
                ctx: &mut RankCtx<u32>,
            ) -> Status {
                ctx.send(ctx.rank(), &0);
                Status::Idle
            }
        }
        let cfg = EngineConfig {
            max_rounds: 50,
            ..free_config()
        };
        let result = SimEngine::new(vec![Livelock], cfg).run();
        assert!(result.hit_round_cap);
        assert_eq!(result.stats.rounds, 50);
    }

    #[test]
    fn virtual_time_reflects_cost_model() {
        let cost = crate::CostModel {
            alpha: 1.0,
            beta: 0.5,
            gamma: 2.0,
            send_overhead: 0.25,
        };
        let cfg = EngineConfig {
            cost,
            ..Default::default()
        };
        let programs = (0..2)
            .map(|_| RingToken {
                hops_left: 1,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, cfg).run();
        // Rank 0: one packet of 4 bytes: overhead 0.25 -> t0 = 0.25.
        // Arrival at rank 1: 0.25 + 1.0 + 0.5·4 = 3.25; + work 1·γ = 5.25.
        let t1 = result.stats.per_rank[1].virtual_time;
        assert!((t1 - 5.25).abs() < 1e-12, "t1 = {t1}");
        assert!((result.stats.makespan() - 5.25).abs() < 1e-12);
    }

    #[test]
    fn sync_rounds_synchronize_clocks() {
        let cost = crate::CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 1.0,
            send_overhead: 0.0,
        };
        let cfg = EngineConfig {
            cost,
            sync_rounds: true,
            ..Default::default()
        };
        let programs = (0..2)
            .map(|_| RingToken {
                hops_left: 3,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, cfg).run();
        let times: Vec<f64> = result
            .stats
            .per_rank
            .iter()
            .map(|r| r.virtual_time)
            .collect();
        assert_eq!(times[0], times[1], "barrier must equalize clocks");
    }

    #[test]
    fn parallel_sim_matches_sequential() {
        let mk = || {
            (0..8)
                .map(|_| RingToken {
                    hops_left: 40,
                    forwarded: 0,
                })
                .collect()
        };
        let seq = SimEngine::<RingToken>::new(mk(), free_config()).run();
        let par_cfg = EngineConfig {
            parallel_sim: true,
            ..free_config()
        };
        let par = SimEngine::<RingToken>::new(mk(), par_cfg).run();
        assert_eq!(seq.stats.rounds, par.stats.rounds);
        for (a, b) in seq.stats.per_rank.iter().zip(&par.stats.per_rank) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn dense_reference_matches_scheduled_run() {
        for sync_rounds in [false, true] {
            let mk = || {
                (0..6)
                    .map(|_| RingToken {
                        hops_left: 25,
                        forwarded: 0,
                    })
                    .collect::<Vec<_>>()
            };
            let cfg = EngineConfig {
                cost: crate::CostModel {
                    alpha: 1.0,
                    beta: 0.5,
                    gamma: 2.0,
                    send_overhead: 0.25,
                },
                sync_rounds,
                record_trace: true,
                ..Default::default()
            };
            let dense = SimEngine::<RingToken>::new(mk(), cfg.clone()).run_dense_reference();
            let sparse = SimEngine::<RingToken>::new(mk(), cfg).run();
            assert_eq!(dense.stats.rounds, sparse.stats.rounds);
            assert_eq!(dense.stats.per_rank, sparse.stats.per_rank);
            assert_eq!(dense.trace, sparse.trace);
            assert_eq!(dense.hit_round_cap, sparse.hit_round_cap);
        }
    }

    #[test]
    fn sched_counters_track_quiet_rounds() {
        let p = 64;
        let programs = (0..p)
            .map(|_| RingToken {
                hops_left: 10,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, free_config()).run();
        let sched = &result.sched;
        assert_eq!(sched.rounds, result.stats.rounds);
        // Round 0 steps everyone; every later round steps exactly the
        // one rank holding the token.
        assert_eq!(sched.worklist_max, p as u64);
        assert_eq!(sched.worklist_total, p as u64 + (sched.rounds - 1));
        assert_eq!(
            sched.ranks_skipped_total,
            (sched.rounds - 1) * (p as u64 - 1)
        );
        assert_eq!(sched.pool_workers, 0, "serial run uses no pool");
    }

    #[test]
    fn pool_reports_utilization() {
        let programs = (0..32)
            .map(|_| RingToken {
                hops_left: 8,
                forwarded: 0,
            })
            .collect::<Vec<_>>();
        let cfg = EngineConfig {
            parallel_sim: true,
            ..free_config()
        };
        let result = SimEngine::new(programs, cfg).run();
        let sched = &result.sched;
        if sched.pool_workers > 0 {
            // Round 0 (32 runnable ranks) goes to the pool; the 1-rank
            // token rounds stay on the driver thread.
            assert!(sched.pool_parallel_rounds >= 1);
            assert_eq!(
                sched.pool_parallel_rounds + sched.pool_serial_rounds,
                sched.rounds
            );
            assert!(sched.pool_chunks_claimed >= sched.pool_parallel_rounds);
        }
    }

    #[test]
    fn trace_records_round_aggregates() {
        let cfg = EngineConfig {
            record_trace: true,
            ..free_config()
        };
        let programs = (0..3)
            .map(|_| RingToken {
                hops_left: 5,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, cfg).run();
        assert_eq!(result.trace.len() as u64, result.stats.rounds);
        let traced_msgs: u64 = result.trace.iter().map(|t| t.messages).sum();
        assert_eq!(traced_msgs, result.stats.total_messages());
        assert_eq!(result.trace[0].round, 0);
        assert_eq!(result.trace[0].ranks_stepped, 3);
        // Later rounds only step the rank holding the token.
        assert_eq!(result.trace[2].ranks_stepped, 1);
        // The trace is off (and empty) by default.
        let programs = (0..3)
            .map(|_| RingToken {
                hops_left: 5,
                forwarded: 0,
            })
            .collect();
        let silent = SimEngine::<RingToken>::new(programs, free_config()).run();
        assert!(silent.trace.is_empty());
    }

    #[test]
    fn zero_ranks_is_a_noop() {
        let result = SimEngine::<RingToken>::new(vec![], free_config()).run();
        assert_eq!(result.stats.rounds, 0);
        assert!(result.programs.is_empty());
    }
}
