//! Deterministic discrete-event simulation engine.
//!
//! Runs any number of ranks on one host, advancing a per-rank virtual clock
//! according to the [`crate::CostModel`]. This is how the repository
//! reproduces the paper's 16,384-processor Blue Gene/P experiments: the
//! algorithms execute for real (producing a real matching / coloring), only
//! *time* is simulated.
//!
//! Timing model, per round and rank:
//! 1. delivery — the rank's clock jumps to the latest arrival among the
//!    packets it consumes (asynchronous wait-for-data);
//! 2. compute — the clock advances by γ · (charged work);
//! 3. send — each produced packet adds the sender overhead to the clock and
//!    is timestamped to arrive at `clock + α + β·bytes`;
//! 4. optionally (sync mode) a barrier max-synchronizes all clocks and adds
//!    `α·⌈log₂ p⌉`.

use crate::bundle::Packet;
use crate::message::decode_all;
use crate::program::{Rank, RankCtx, RankProgram, Status};
use crate::stats::{RankStats, RunStats};
use crate::EngineConfig;
use bytes::Bytes;
use cmg_obs::{Event, PhaseName, ENGINE_RANK};

/// A packet in flight, with its computed arrival time.
struct InFlight {
    src: Rank,
    arrival: f64,
    payload: Bytes,
    logical: u32,
}

/// Per-rank simulation state.
struct Slot<P: RankProgram> {
    program: P,
    ctx: RankCtx<P::Msg>,
    status: Status,
    vtime: f64,
    stats: RankStats,
    mailbox: Vec<InFlight>,
    /// Packets produced this round with their arrival timestamps, drained
    /// by the (serial, deterministic) routing pass.
    produced: Vec<(Packet, f64)>,
}

/// Aggregate counters of one simulation round (recorded when
/// `EngineConfig::record_trace` is set).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundTrace {
    /// Round number (0 = the `on_start` round).
    pub round: u64,
    /// Ranks that actually stepped.
    pub ranks_stepped: u64,
    /// Wire packets produced this round.
    pub packets: u64,
    /// Logical messages produced this round.
    pub messages: u64,
    /// Payload bytes produced this round.
    pub bytes: u64,
    /// Maximum per-rank virtual time after the round.
    pub max_virtual_time: f64,
}

/// Result of a simulated run: the final rank programs (holding the computed
/// matching/coloring) plus execution statistics.
pub struct SimResult<P> {
    /// Final per-rank program state.
    pub programs: Vec<P>,
    /// Execution statistics (virtual times, message counts, …).
    pub stats: RunStats,
    /// `true` if the run stopped because it hit `max_rounds` instead of
    /// quiescing.
    pub hit_round_cap: bool,
    /// Per-round trace (empty unless `EngineConfig::record_trace`).
    pub trace: Vec<RoundTrace>,
}

/// The simulation engine. See the module docs.
pub struct SimEngine<P: RankProgram> {
    slots: Vec<Slot<P>>,
    config: EngineConfig,
}

impl<P: RankProgram> SimEngine<P> {
    /// Creates an engine over one program per rank (rank = index).
    pub fn new(programs: Vec<P>, config: EngineConfig) -> Self {
        let p = programs.len() as Rank;
        let slots = programs
            .into_iter()
            .enumerate()
            .map(|(r, program)| Slot {
                program,
                ctx: RankCtx::new(r as Rank, p, config.bundling, config.recorder.clone()),
                status: Status::Active,
                vtime: 0.0,
                stats: RankStats::default(),
                mailbox: Vec::new(),
                produced: Vec::new(),
            })
            .collect();
        SimEngine { slots, config }
    }

    /// Runs to quiescence (or the round cap) and returns the result.
    pub fn run(mut self) -> SimResult<P> {
        let p = self.slots.len();
        let mut rounds: u64 = 0;
        let mut hit_round_cap = false;
        let mut trace: Vec<RoundTrace> = Vec::new();

        let recorder = self.config.recorder.clone();
        if p > 0 {
            loop {
                let first = rounds == 0;
                let active_before: u64 = if recorder.enabled() {
                    let t = self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max);
                    recorder.emit(
                        ENGINE_RANK,
                        t,
                        Event::RoundStart {
                            round: rounds as u32,
                        },
                    );
                    self.slots.iter().map(|s| s.stats.rounds_active).sum()
                } else {
                    0
                };
                let before: (u64, u64, u64, u64) = if self.config.record_trace {
                    self.slots.iter().fold((0, 0, 0, 0), |acc, s| {
                        (
                            acc.0 + s.stats.rounds_active,
                            acc.1 + s.stats.packets_sent,
                            acc.2 + s.stats.messages_sent,
                            acc.3 + s.stats.bytes_sent,
                        )
                    })
                } else {
                    (0, 0, 0, 0)
                };
                self.step_all(first);
                if self.config.record_trace {
                    let after = self.slots.iter().fold((0, 0, 0, 0), |acc, s| {
                        (
                            acc.0 + s.stats.rounds_active,
                            acc.1 + s.stats.packets_sent,
                            acc.2 + s.stats.messages_sent,
                            acc.3 + s.stats.bytes_sent,
                        )
                    });
                    trace.push(RoundTrace {
                        round: rounds,
                        ranks_stepped: after.0 - before.0,
                        packets: after.1 - before.1,
                        messages: after.2 - before.2,
                        bytes: after.3 - before.3,
                        max_virtual_time: self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max),
                    });
                }
                rounds += 1;

                if self.config.sync_rounds {
                    let tmax = self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max)
                        + self.config.cost.barrier_time(p);
                    for s in &mut self.slots {
                        s.vtime = tmax;
                    }
                }

                // Route produced packets into destination mailboxes
                // (rank-ordered: deterministic).
                let mut any_in_flight = false;
                for r in 0..p {
                    let produced = std::mem::take(&mut self.slots[r].produced);
                    for (packet, arrival) in produced {
                        any_in_flight = true;
                        self.slots[packet.dst as usize].mailbox.push(InFlight {
                            src: r as Rank,
                            arrival,
                            payload: packet.payload,
                            logical: packet.logical,
                        });
                    }
                }

                if recorder.enabled() {
                    let stepped: u64 = self
                        .slots
                        .iter()
                        .map(|s| s.stats.rounds_active)
                        .sum::<u64>()
                        - active_before;
                    let t = self.slots.iter().map(|s| s.vtime).fold(0.0, f64::max);
                    recorder.emit(
                        ENGINE_RANK,
                        t,
                        Event::RoundEnd {
                            round: rounds as u32 - 1,
                            active_ranks: stepped as u32,
                        },
                    );
                }

                let all_idle = self.slots.iter().all(|s| s.status == Status::Idle);
                if all_idle && !any_in_flight {
                    break;
                }
                if rounds >= self.config.max_rounds {
                    hit_round_cap = true;
                    break;
                }
            }
        }

        let mut per_rank = Vec::with_capacity(p);
        let mut programs = Vec::with_capacity(p);
        for mut s in self.slots {
            s.stats.virtual_time = s.vtime;
            per_rank.push(s.stats);
            programs.push(s.program);
        }
        SimResult {
            programs,
            stats: RunStats { per_rank, rounds },
            hit_round_cap,
            trace,
        }
    }

    /// Steps every rank that must run this round.
    fn step_all(&mut self, first: bool) {
        let cost = self.config.cost;
        let recorder = self.config.recorder.clone();
        let step_one = move |slot: &mut Slot<P>| {
            if !first && slot.status == Status::Idle && slot.mailbox.is_empty() {
                return;
            }
            let rank = slot.ctx.rank();
            let observed = recorder.enabled();
            // Deliver: jump the clock to the latest consumed arrival.
            let delivery_start = slot.vtime;
            let mut inbox: Vec<(Rank, Vec<P::Msg>)> = Vec::new();
            let had_mail = !slot.mailbox.is_empty();
            if had_mail {
                let mut mail = std::mem::take(&mut slot.mailbox);
                mail.sort_by(|a, b| a.src.cmp(&b.src).then(a.arrival.total_cmp(&b.arrival)));
                for m in &mail {
                    slot.vtime = slot.vtime.max(m.arrival);
                }
                for m in mail {
                    slot.stats.packets_received += 1;
                    slot.stats.bytes_received += m.payload.len() as u64;
                    slot.stats.messages_received += m.logical as u64;
                    if observed {
                        recorder.emit(
                            rank,
                            m.arrival,
                            Event::PacketRecv {
                                src: m.src,
                                bytes: m.payload.len() as u64,
                                logical: m.logical,
                            },
                        );
                    }
                    let msgs: Vec<P::Msg> = decode_all(m.payload)
                        .expect("malformed bundle: WireMessage encode/decode mismatch");
                    match inbox.last_mut() {
                        Some((src, list)) if *src == m.src => list.extend(msgs),
                        _ => inbox.push((m.src, msgs)),
                    }
                }
                if observed {
                    recorder.emit(
                        rank,
                        slot.vtime,
                        Event::Phase {
                            name: PhaseName::Delivery,
                            start: delivery_start,
                            dur: slot.vtime - delivery_start,
                        },
                    );
                }
            }
            // Compute.
            let compute_start = slot.vtime;
            slot.ctx.set_now(compute_start);
            slot.status = if first {
                slot.program.on_start(&mut slot.ctx)
            } else {
                slot.program.on_round(&mut inbox, &mut slot.ctx)
            };
            let (work, packets) = slot.ctx.end_round();
            slot.stats.rounds_active += 1;
            slot.stats.work += work;
            slot.vtime += cost.compute_time(work);
            if observed {
                recorder.emit(
                    rank,
                    slot.vtime,
                    Event::Phase {
                        name: PhaseName::Compute,
                        start: compute_start,
                        dur: slot.vtime - compute_start,
                    },
                );
            }
            // Send: overhead advances the sender; transfer delays arrival.
            let send_start = slot.vtime;
            slot.produced = packets
                .into_iter()
                .map(|packet| {
                    slot.stats.packets_sent += 1;
                    slot.stats.messages_sent += packet.logical as u64;
                    slot.stats.bytes_sent += packet.payload.len() as u64;
                    slot.vtime += cost.send_overhead;
                    if observed {
                        recorder.emit(
                            rank,
                            slot.vtime,
                            Event::PacketSent {
                                dst: packet.dst,
                                bytes: packet.payload.len() as u64,
                                logical: packet.logical,
                            },
                        );
                    }
                    let arrival = slot.vtime + cost.transfer_time(packet.payload.len());
                    (packet, arrival)
                })
                .collect();
            if observed && !slot.produced.is_empty() {
                recorder.emit(
                    rank,
                    slot.vtime,
                    Event::Phase {
                        name: PhaseName::Send,
                        start: send_start,
                        dur: slot.vtime - send_start,
                    },
                );
            }
        };

        if self.config.parallel_sim && self.slots.len() >= 4 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.slots.len());
            let chunk = self.slots.len().div_ceil(threads);
            let step_one = &step_one;
            crossbeam::thread::scope(|scope| {
                for chunk_slots in self.slots.chunks_mut(chunk) {
                    scope.spawn(move |_| {
                        for slot in chunk_slots {
                            step_one(slot);
                        }
                    });
                }
            })
            .expect("sim worker panicked");
        } else {
            for slot in &mut self.slots {
                step_one(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank 0 sends `hops` tokens around the ring one at a time; every
    /// other rank forwards. Terminates when the token has moved `hops`
    /// times.
    struct RingToken {
        hops_left: u32,
        forwarded: u64,
    }

    impl RankProgram for RingToken {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut RankCtx<u32>) -> Status {
            if ctx.rank() == 0 && self.hops_left > 0 {
                let next = (ctx.rank() + 1) % ctx.num_ranks();
                ctx.send(next, &(self.hops_left - 1));
            }
            Status::Idle
        }

        fn on_round(
            &mut self,
            inbox: &mut Vec<(Rank, Vec<u32>)>,
            ctx: &mut RankCtx<u32>,
        ) -> Status {
            for (_, msgs) in inbox.drain(..) {
                for hops in msgs {
                    self.forwarded += 1;
                    ctx.charge(1);
                    if hops > 0 {
                        let next = (ctx.rank() + 1) % ctx.num_ranks();
                        ctx.send(next, &(hops - 1));
                    }
                }
            }
            Status::Idle
        }
    }

    fn free_config() -> EngineConfig {
        EngineConfig {
            cost: crate::CostModel::compute_only(),
            ..Default::default()
        }
    }

    #[test]
    fn ring_token_terminates_and_counts() {
        let p = 4;
        let programs = (0..p)
            .map(|_| RingToken {
                hops_left: 10,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::new(programs, free_config()).run();
        assert!(!result.hit_round_cap);
        let total: u64 = result.programs.iter().map(|r| r.forwarded).sum();
        assert_eq!(total, 10);
        assert_eq!(result.stats.total_messages(), 10);
        assert_eq!(result.stats.total_work(), 10);
        // Every packet injected into a mailbox was delivered.
        result.stats.assert_conservation();
    }

    #[test]
    fn quiescent_program_stops_immediately() {
        struct Nop;
        impl RankProgram for Nop {
            type Msg = u32;
            fn on_start(&mut self, _: &mut RankCtx<u32>) -> Status {
                Status::Idle
            }
            fn on_round(&mut self, _: &mut Vec<(Rank, Vec<u32>)>, _: &mut RankCtx<u32>) -> Status {
                panic!("must not be called");
            }
        }
        let result = SimEngine::new(vec![Nop, Nop], free_config()).run();
        assert_eq!(result.stats.rounds, 1);
    }

    #[test]
    fn round_cap_trips_on_livelock() {
        /// Sends itself a message forever.
        struct Livelock;
        impl RankProgram for Livelock {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut RankCtx<u32>) -> Status {
                ctx.send(ctx.rank(), &0);
                Status::Idle
            }
            fn on_round(
                &mut self,
                _: &mut Vec<(Rank, Vec<u32>)>,
                ctx: &mut RankCtx<u32>,
            ) -> Status {
                ctx.send(ctx.rank(), &0);
                Status::Idle
            }
        }
        let cfg = EngineConfig {
            max_rounds: 50,
            ..free_config()
        };
        let result = SimEngine::new(vec![Livelock], cfg).run();
        assert!(result.hit_round_cap);
        assert_eq!(result.stats.rounds, 50);
    }

    #[test]
    fn virtual_time_reflects_cost_model() {
        let cost = crate::CostModel {
            alpha: 1.0,
            beta: 0.5,
            gamma: 2.0,
            send_overhead: 0.25,
        };
        let cfg = EngineConfig {
            cost,
            ..Default::default()
        };
        let programs = (0..2)
            .map(|_| RingToken {
                hops_left: 1,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, cfg).run();
        // Rank 0: one packet of 4 bytes: overhead 0.25 -> t0 = 0.25.
        // Arrival at rank 1: 0.25 + 1.0 + 0.5·4 = 3.25; + work 1·γ = 5.25.
        let t1 = result.stats.per_rank[1].virtual_time;
        assert!((t1 - 5.25).abs() < 1e-12, "t1 = {t1}");
        assert!((result.stats.makespan() - 5.25).abs() < 1e-12);
    }

    #[test]
    fn sync_rounds_synchronize_clocks() {
        let cost = crate::CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 1.0,
            send_overhead: 0.0,
        };
        let cfg = EngineConfig {
            cost,
            sync_rounds: true,
            ..Default::default()
        };
        let programs = (0..2)
            .map(|_| RingToken {
                hops_left: 3,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, cfg).run();
        let times: Vec<f64> = result
            .stats
            .per_rank
            .iter()
            .map(|r| r.virtual_time)
            .collect();
        assert_eq!(times[0], times[1], "barrier must equalize clocks");
    }

    #[test]
    fn parallel_sim_matches_sequential() {
        let mk = || {
            (0..8)
                .map(|_| RingToken {
                    hops_left: 40,
                    forwarded: 0,
                })
                .collect()
        };
        let seq = SimEngine::<RingToken>::new(mk(), free_config()).run();
        let par_cfg = EngineConfig {
            parallel_sim: true,
            ..free_config()
        };
        let par = SimEngine::<RingToken>::new(mk(), par_cfg).run();
        assert_eq!(seq.stats.rounds, par.stats.rounds);
        for (a, b) in seq.stats.per_rank.iter().zip(&par.stats.per_rank) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trace_records_round_aggregates() {
        let cfg = EngineConfig {
            record_trace: true,
            ..free_config()
        };
        let programs = (0..3)
            .map(|_| RingToken {
                hops_left: 5,
                forwarded: 0,
            })
            .collect();
        let result = SimEngine::<RingToken>::new(programs, cfg).run();
        assert_eq!(result.trace.len() as u64, result.stats.rounds);
        let traced_msgs: u64 = result.trace.iter().map(|t| t.messages).sum();
        assert_eq!(traced_msgs, result.stats.total_messages());
        assert_eq!(result.trace[0].round, 0);
        assert_eq!(result.trace[0].ranks_stepped, 3);
        // Later rounds only step the rank holding the token.
        assert_eq!(result.trace[2].ranks_stepped, 1);
        // The trace is off (and empty) by default.
        let programs = (0..3)
            .map(|_| RingToken {
                hops_left: 5,
                forwarded: 0,
            })
            .collect();
        let silent = SimEngine::<RingToken>::new(programs, free_config()).run();
        assert!(silent.trace.is_empty());
    }

    #[test]
    fn zero_ranks_is_a_noop() {
        let result = SimEngine::<RingToken>::new(vec![], free_config()).run();
        assert_eq!(result.stats.rounds, 0);
        assert!(result.programs.is_empty());
    }
}
