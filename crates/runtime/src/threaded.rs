//! Threaded execution engine: one OS thread per rank, real channels, real
//! wall-clock time.
//!
//! This engine validates the algorithms under true concurrency and provides
//! the wall-time measurements for host-scale rank counts. It executes the
//! same round protocol as the simulation engine — messages sent in round
//! *t* are delivered in round *t + 1*, rounds are separated by barriers —
//! so both engines produce identical algorithm results.

use crate::message::decode_all_into;
use crate::program::{Rank, RankCtx, RankProgram, Status};
use crate::stats::{RankStats, RunStats};
use crate::EngineConfig;
use bytes::Bytes;
use cmg_obs::{Event, PhaseName, ENGINE_RANK};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// What travels between threads: `(src, seq-within-src, payload, logical)`.
type WirePacket = (Rank, u64, Bytes, u32);

/// Result of a threaded run.
pub struct ThreadedResult<P> {
    /// Final per-rank program state, indexed by rank.
    pub programs: Vec<P>,
    /// Execution statistics (virtual times are 0 — this engine measures
    /// real time instead).
    pub stats: RunStats,
    /// Measured wall-clock time of the whole run.
    pub wall_time: Duration,
    /// `true` if the run stopped at the round cap.
    pub hit_round_cap: bool,
}

/// The threaded engine. See the module docs.
pub struct ThreadedEngine<P: RankProgram> {
    programs: Vec<P>,
    config: EngineConfig,
}

impl<P: RankProgram> ThreadedEngine<P> {
    /// Creates an engine over one program per rank (rank = index).
    ///
    /// Keep the rank count within a small multiple of the host's cores:
    /// every rank is a real thread.
    pub fn new(programs: Vec<P>, config: EngineConfig) -> Self {
        ThreadedEngine { programs, config }
    }

    /// Runs to quiescence (or the round cap) and returns the result.
    pub fn run(self) -> ThreadedResult<P> {
        let p = self.programs.len();
        if p == 0 {
            return ThreadedResult {
                programs: Vec::new(),
                stats: RunStats::default(),
                wall_time: Duration::ZERO,
                hit_round_cap: false,
            };
        }

        let (senders, receivers): (Vec<Sender<WirePacket>>, Vec<Receiver<WirePacket>>) =
            (0..p).map(|_| unbounded()).unzip();
        let barrier = Barrier::new(p);
        // Double-buffered activity flags indexed by round parity (see the
        // protocol note in `run_rank`).
        let activity = [AtomicBool::new(false), AtomicBool::new(false)];
        let cap_hit = AtomicBool::new(false);

        let start = Instant::now();
        let mut results: Vec<Option<(P, RankStats, u64)>> = (0..p).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (program, receiver)) in self.programs.into_iter().zip(receivers).enumerate()
            {
                let senders = senders.clone();
                let barrier = &barrier;
                let activity = &activity;
                let cap_hit = &cap_hit;
                let config = &self.config;
                handles.push(scope.spawn(move |_| {
                    run_rank::<P>(
                        rank as Rank,
                        p as Rank,
                        program,
                        receiver,
                        senders,
                        barrier,
                        activity,
                        cap_hit,
                        config,
                        start,
                    )
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                results[rank] = Some(handle.join().expect("rank thread panicked"));
            }
        })
        .expect("threaded scope panicked");
        let wall_time = start.elapsed();

        let mut programs = Vec::with_capacity(p);
        let mut per_rank = Vec::with_capacity(p);
        let mut rounds = 0;
        for slot in results {
            let (program, stats, rank_rounds) = slot.expect("missing rank result");
            rounds = rounds.max(rank_rounds);
            programs.push(program);
            per_rank.push(stats);
        }
        let stats = RunStats { per_rank, rounds };
        let hit_round_cap = cap_hit.load(Ordering::Relaxed);
        // Debug builds verify send/receive conservation on every clean
        // run (a capped run may legitimately strand packets in channels).
        #[cfg(debug_assertions)]
        if !hit_round_cap {
            stats.assert_conservation();
        }
        ThreadedResult {
            programs,
            stats,
            wall_time,
            hit_round_cap,
        }
    }
}

/// The per-thread round loop.
///
/// Protocol per round `r`:
/// 1. step the program with the inbox drained at the end of round `r − 1`;
/// 2. send produced packets; publish activity into `activity[r % 2]`,
///    clear `activity[(r + 1) % 2]` for the next round;
/// 3. barrier — all sends are now visible;
/// 4. drain the channel into the next inbox; read the global activity flag;
///    exit if no rank was active and nothing was sent.
#[allow(clippy::too_many_arguments)]
fn run_rank<P: RankProgram>(
    rank: Rank,
    num_ranks: Rank,
    mut program: P,
    receiver: Receiver<WirePacket>,
    senders: Vec<Sender<WirePacket>>,
    barrier: &Barrier,
    activity: &[AtomicBool; 2],
    cap_hit: &AtomicBool,
    config: &EngineConfig,
    start: Instant,
) -> (P, RankStats, u64) {
    let recorder = config.recorder.clone();
    let observed = recorder.enabled();
    // Event timestamps: wall seconds since the run started (shared
    // epoch across ranks, so the trace tracks line up).
    let now = move || start.elapsed().as_secs_f64();
    let mut ctx: RankCtx<P::Msg> = RankCtx::new(rank, num_ranks, config.bundling, recorder.clone());
    let mut stats = RankStats::default();
    let mut inbox_raw: Vec<WirePacket> = Vec::new();
    // Recycled across rounds: the grouped inbox handed to `on_round`
    // (outer vec only — message lists move into it each round) and the
    // packet buffer the outbox drains into.
    let mut inbox: Vec<(Rank, Vec<P::Msg>)> = Vec::new();
    let mut packet_buf: Vec<crate::bundle::Packet> = Vec::new();
    let mut seq: u64 = 0;
    let mut round: u64 = 0;

    loop {
        if observed && rank == 0 {
            recorder.emit(
                ENGINE_RANK,
                now(),
                Event::RoundStart {
                    round: round as u32,
                },
            );
        }
        // 1. Step.
        let delivery_start = now();
        let mut compute_begin = delivery_start;
        let status = if round == 0 {
            ctx.set_now(delivery_start);
            program.on_start(&mut ctx)
        } else {
            // hot-path: begin (delivery — recycled buffers, no allocation)
            // 0/1-packet inboxes skip the sort; the `(src, seq)` key is
            // unique, so an unstable sort is deterministic.
            if inbox_raw.len() > 1 {
                inbox_raw.sort_unstable_by_key(|&(src, sq, _, _)| (src, sq));
            }
            let had_mail = !inbox_raw.is_empty();
            for (src, _, payload, logical) in inbox_raw.drain(..) {
                stats.packets_received += 1;
                stats.bytes_received += payload.len() as u64;
                stats.messages_received += logical as u64;
                if observed {
                    recorder.emit(
                        rank,
                        now(),
                        Event::PacketRecv {
                            src,
                            bytes: payload.len() as u64,
                            logical,
                        },
                    );
                }
                // Decode straight into the per-source list (no per-packet
                // temporary vector).
                let list = match inbox.last_mut() {
                    Some((s, list)) if *s == src => list,
                    _ => {
                        inbox.push((src, Vec::new()));
                        &mut inbox.last_mut().expect("just pushed").1
                    }
                };
                decode_all_into(payload, list)
                    .expect("malformed bundle: WireMessage encode/decode mismatch");
            }
            // hot-path: end (delivery)
            if observed && had_mail {
                let t = now();
                recorder.emit(
                    rank,
                    t,
                    Event::Phase {
                        name: PhaseName::Delivery,
                        start: delivery_start,
                        dur: t - delivery_start,
                    },
                );
            }
            compute_begin = now();
            ctx.set_now(compute_begin);
            let status = program.on_round(&mut inbox, &mut ctx);
            inbox.clear();
            status
        };
        let compute_end = now();
        let work = ctx.end_round_into(&mut packet_buf);
        if observed {
            recorder.emit(
                rank,
                compute_end,
                Event::Phase {
                    name: PhaseName::Compute,
                    start: compute_begin,
                    dur: compute_end - compute_begin,
                },
            );
        }
        stats.rounds_active += 1;
        stats.work += work;

        // 2. Send.
        let send_start = now();
        let sent_any = !packet_buf.is_empty();
        for packet in packet_buf.drain(..) {
            stats.packets_sent += 1;
            stats.messages_sent += packet.logical as u64;
            stats.bytes_sent += packet.payload.len() as u64;
            if observed {
                recorder.emit(
                    rank,
                    now(),
                    Event::PacketSent {
                        dst: packet.dst,
                        bytes: packet.payload.len() as u64,
                        logical: packet.logical,
                    },
                );
            }
            seq += 1;
            senders[packet.dst as usize]
                .send((rank, seq, packet.payload, packet.logical))
                .expect("receiver dropped");
        }
        if observed && sent_any {
            let t = now();
            recorder.emit(
                rank,
                t,
                Event::Phase {
                    name: PhaseName::Send,
                    start: send_start,
                    dur: t - send_start,
                },
            );
        }
        let parity = (round % 2) as usize;
        if status == Status::Active || sent_any {
            activity[parity].store(true, Ordering::SeqCst);
        }

        // 3. First barrier: all sends and activity stores are now visible.
        barrier.wait();

        // 4. Drain and decide. Every thread reads the same flag value
        // because nothing writes it between the two barriers.
        inbox_raw.extend(receiver.try_iter());
        let keep_going = activity[parity].load(Ordering::SeqCst);

        // 5. Second barrier: all reads done; this round's flag may now be
        // reset (it is next written in round r + 2, two barriers away, so
        // the reset cannot race with a future set).
        barrier.wait();
        activity[parity].store(false, Ordering::SeqCst);

        if observed && rank == 0 {
            // Every rank steps every round in this engine, so all ranks
            // count as active.
            recorder.emit(
                ENGINE_RANK,
                now(),
                Event::RoundEnd {
                    round: round as u32,
                    active_ranks: num_ranks,
                },
            );
        }

        round += 1;
        // Checkpoint equivalence oracle (see `EngineConfig::
        // checkpoint_every`): at every k-round edge the program is
        // round-tripped through its snapshot wire encoding in place.
        // Purely thread-local and deterministic, so the run must stay
        // bit-identical to an uninterrupted one.
        if let Some(k) = config.checkpoint_every.filter(|&k| k > 0) {
            if round.is_multiple_of(k) {
                use crate::snapshot::ProgramSnapshot;
                let meta = program.meta();
                let bytes = program.snapshot().encode_bytes();
                let snap = <P::Snapshot as ProgramSnapshot>::decode_bytes(bytes)
                    .expect("snapshot did not round-trip through its wire encoding");
                program = P::restore(meta, snap);
            }
        }
        if !keep_going {
            break;
        }
        if round >= config.max_rounds {
            cap_hit.store(true, Ordering::SeqCst);
            break;
        }
    }
    (program, stats, round)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every rank sends its id to every other rank once, then sums what it
    /// receives.
    #[derive(Clone)]
    struct AllToAll {
        sum: u64,
    }

    impl RankProgram for AllToAll {
        type Msg = u32;
        crate::trivial_snapshot!();

        fn on_start(&mut self, ctx: &mut RankCtx<u32>) -> Status {
            for dst in 0..ctx.num_ranks() {
                if dst != ctx.rank() {
                    ctx.send(dst, &ctx.rank().clone());
                }
            }
            Status::Idle
        }

        fn on_round(
            &mut self,
            inbox: &mut Vec<(Rank, Vec<u32>)>,
            _ctx: &mut RankCtx<u32>,
        ) -> Status {
            for (_, msgs) in inbox.drain(..) {
                for m in msgs {
                    self.sum += m as u64;
                }
            }
            Status::Idle
        }
    }

    #[test]
    fn all_to_all_delivers_everything() {
        let p = 8u32;
        let programs = (0..p).map(|_| AllToAll { sum: 0 }).collect();
        let result = ThreadedEngine::new(programs, EngineConfig::default()).run();
        assert!(!result.hit_round_cap);
        let expected: u64 = (0..p as u64).sum();
        for (rank, prog) in result.programs.iter().enumerate() {
            assert_eq!(prog.sum, expected - rank as u64, "rank {rank}");
        }
        // p ranks × (p−1) messages, bundled into (p−1) packets each.
        assert_eq!(result.stats.total_messages(), (p * (p - 1)) as u64);
        assert_eq!(result.stats.total_packets(), (p * (p - 1)) as u64);
        // Everything sent over the channels was received and decoded.
        result.stats.assert_conservation();
    }

    #[test]
    fn single_rank_runs() {
        let result = ThreadedEngine::new(vec![AllToAll { sum: 0 }], EngineConfig::default()).run();
        assert_eq!(result.programs[0].sum, 0);
        assert_eq!(result.stats.rounds, 1);
    }

    #[test]
    fn empty_engine_is_noop() {
        let result = ThreadedEngine::<AllToAll>::new(vec![], EngineConfig::default()).run();
        assert!(result.programs.is_empty());
    }

    #[test]
    fn matches_sim_engine_results() {
        let p = 6u32;
        let threaded = ThreadedEngine::new(
            (0..p).map(|_| AllToAll { sum: 0 }).collect(),
            EngineConfig::default(),
        )
        .run();
        let sim = crate::SimEngine::new(
            (0..p).map(|_| AllToAll { sum: 0 }).collect::<Vec<_>>(),
            EngineConfig::default(),
        )
        .run();
        for r in 0..p as usize {
            assert_eq!(threaded.programs[r].sum, sim.programs[r].sum);
        }
        assert_eq!(threaded.stats.total_messages(), sim.stats.total_messages());
    }
}
