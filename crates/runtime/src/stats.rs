//! Per-rank and run-wide execution statistics: the raw material for every
//! scalability figure and for the message-count/volume ablations.

/// Counters for one rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Wire packets sent (bundles when bundling is on).
    pub packets_sent: u64,
    /// Logical messages sent (independent of bundling).
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Logical messages received.
    pub messages_received: u64,
    /// Charged compute work units.
    pub work: u64,
    /// Rounds in which this rank actually stepped.
    pub rounds_active: u64,
    /// Final virtual time (simulation engine only; 0 under the threaded
    /// engine).
    pub virtual_time: f64,
}

/// Aggregated statistics of one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Per-rank counters, indexed by rank.
    pub per_rank: Vec<RankStats>,
    /// Total number of engine rounds executed.
    pub rounds: u64,
}

impl RunStats {
    /// Total wire packets across all ranks.
    pub fn total_packets(&self) -> u64 {
        self.per_rank.iter().map(|r| r.packets_sent).sum()
    }

    /// Total logical messages across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.per_rank.iter().map(|r| r.messages_sent).sum()
    }

    /// Total payload bytes across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total charged work units across all ranks.
    pub fn total_work(&self) -> u64 {
        self.per_rank.iter().map(|r| r.work).sum()
    }

    /// Simulated completion time: the maximum per-rank virtual time (the
    /// quantity plotted on the y-axis of Figures 5.1–5.4).
    pub fn makespan(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.virtual_time)
            .fold(0.0, f64::max)
    }

    /// Average per-rank virtual time (load-balance indicator).
    pub fn mean_virtual_time(&self) -> f64 {
        if self.per_rank.is_empty() {
            0.0
        } else {
            self.per_rank.iter().map(|r| r.virtual_time).sum::<f64>()
                / self.per_rank.len() as f64
        }
    }

    /// Maximum work assigned to any rank divided by the mean — 1.0 is
    /// perfectly balanced.
    pub fn work_imbalance(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 1.0;
        }
        let max = self.per_rank.iter().map(|r| r.work).max().unwrap_or(0) as f64;
        let mean = self.total_work() as f64 / self.per_rank.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats2() -> RunStats {
        RunStats {
            per_rank: vec![
                RankStats {
                    packets_sent: 2,
                    messages_sent: 10,
                    bytes_sent: 80,
                    messages_received: 4,
                    work: 100,
                    rounds_active: 3,
                    virtual_time: 1.5,
                },
                RankStats {
                    packets_sent: 1,
                    messages_sent: 5,
                    bytes_sent: 40,
                    messages_received: 11,
                    work: 300,
                    rounds_active: 3,
                    virtual_time: 2.5,
                },
            ],
            rounds: 3,
        }
    }

    #[test]
    fn aggregates() {
        let s = stats2();
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.total_messages(), 15);
        assert_eq!(s.total_bytes(), 120);
        assert_eq!(s.total_work(), 400);
        assert_eq!(s.makespan(), 2.5);
        assert_eq!(s.mean_virtual_time(), 2.0);
        assert_eq!(s.work_imbalance(), 1.5);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = RunStats::default();
        assert_eq!(s.makespan(), 0.0);
        assert_eq!(s.work_imbalance(), 1.0);
        assert_eq!(s.mean_virtual_time(), 0.0);
    }
}
