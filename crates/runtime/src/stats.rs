//! Per-rank and run-wide execution statistics: the raw material for every
//! scalability figure and for the message-count/volume ablations.

/// Counters for one rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Wire packets sent (bundles when bundling is on).
    pub packets_sent: u64,
    /// Wire packets received.
    pub packets_received: u64,
    /// Logical messages sent (independent of bundling).
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Logical messages received.
    pub messages_received: u64,
    /// Charged compute work units.
    pub work: u64,
    /// Rounds in which this rank actually stepped.
    pub rounds_active: u64,
    /// Final virtual time (simulation engine only; 0 under the threaded
    /// engine).
    pub virtual_time: f64,
}

impl RankStats {
    /// Element-wise accumulation of another rank's counters into this
    /// one (virtual time takes the max, matching makespan semantics).
    pub fn merge(&mut self, other: &RankStats) {
        self.packets_sent += other.packets_sent;
        self.packets_received += other.packets_received;
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_received += other.messages_received;
        self.work += other.work;
        self.rounds_active += other.rounds_active;
        self.virtual_time = self.virtual_time.max(other.virtual_time);
    }
}

/// Aggregated statistics of one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Per-rank counters, indexed by rank.
    pub per_rank: Vec<RankStats>,
    /// Total number of engine rounds executed.
    pub rounds: u64,
}

impl RunStats {
    /// Total wire packets across all ranks.
    pub fn total_packets(&self) -> u64 {
        self.per_rank.iter().map(|r| r.packets_sent).sum()
    }

    /// Total logical messages across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.per_rank.iter().map(|r| r.messages_sent).sum()
    }

    /// Total payload bytes across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total wire packets received across all ranks.
    pub fn total_packets_received(&self) -> u64 {
        self.per_rank.iter().map(|r| r.packets_received).sum()
    }

    /// Total payload bytes received across all ranks.
    pub fn total_bytes_received(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_received).sum()
    }

    /// Merges another run's stats into this one: per-rank counters add
    /// element-wise (the rank vector grows to the longer of the two),
    /// rounds add. Useful for aggregating the phases of a multi-stage
    /// run (e.g. matching followed by coloring) into one ledger.
    pub fn merge(&mut self, other: &RunStats) {
        if self.per_rank.len() < other.per_rank.len() {
            self.per_rank
                .resize(other.per_rank.len(), RankStats::default());
        }
        for (mine, theirs) in self.per_rank.iter_mut().zip(&other.per_rank) {
            mine.merge(theirs);
        }
        self.rounds += other.rounds;
    }

    /// Checks send/receive conservation: every wire packet (and byte)
    /// sent by some rank must have been received by some rank. Both
    /// engines deliver all traffic before returning, so any imbalance
    /// is an engine accounting bug. Returns the first imbalance as a
    /// diagnostic, or `None` when the ledgers balance — the non-panicking
    /// form the `cmg-check` oracles evaluate.
    pub fn conservation_violation(&self) -> Option<String> {
        if self.total_packets() != self.total_packets_received() {
            return Some(format!(
                "wire packet conservation violated: {} sent vs {} received",
                self.total_packets(),
                self.total_packets_received(),
            ));
        }
        if self.total_bytes() != self.total_bytes_received() {
            return Some(format!(
                "payload byte conservation violated: {} sent vs {} received",
                self.total_bytes(),
                self.total_bytes_received(),
            ));
        }
        let received: u64 = self.per_rank.iter().map(|r| r.messages_received).sum();
        if self.total_messages() != received {
            return Some(format!(
                "logical message conservation violated: {} sent vs {} received",
                self.total_messages(),
                received,
            ));
        }
        None
    }

    /// Panicking form of [`RunStats::conservation_violation`]; both
    /// engines call it (debug builds) at the end of every clean run.
    ///
    /// # Panics
    /// Panics with a diagnostic if the ledgers do not balance.
    pub fn assert_conservation(&self) {
        if let Some(violation) = self.conservation_violation() {
            panic!("{violation}");
        }
    }

    /// Total charged work units across all ranks.
    pub fn total_work(&self) -> u64 {
        self.per_rank.iter().map(|r| r.work).sum()
    }

    /// Simulated completion time: the maximum per-rank virtual time (the
    /// quantity plotted on the y-axis of Figures 5.1–5.4).
    pub fn makespan(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.virtual_time)
            .fold(0.0, f64::max)
    }

    /// Average per-rank virtual time (load-balance indicator).
    pub fn mean_virtual_time(&self) -> f64 {
        if self.per_rank.is_empty() {
            0.0
        } else {
            self.per_rank.iter().map(|r| r.virtual_time).sum::<f64>() / self.per_rank.len() as f64
        }
    }

    /// Maximum work assigned to any rank divided by the mean — 1.0 is
    /// perfectly balanced.
    pub fn work_imbalance(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 1.0;
        }
        let max = self.per_rank.iter().map(|r| r.work).max().unwrap_or(0) as f64;
        let mean = self.total_work() as f64 / self.per_rank.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats2() -> RunStats {
        RunStats {
            per_rank: vec![
                RankStats {
                    packets_sent: 2,
                    packets_received: 1,
                    messages_sent: 10,
                    bytes_sent: 80,
                    bytes_received: 40,
                    messages_received: 4,
                    work: 100,
                    rounds_active: 3,
                    virtual_time: 1.5,
                },
                RankStats {
                    packets_sent: 1,
                    packets_received: 2,
                    messages_sent: 5,
                    bytes_sent: 40,
                    bytes_received: 80,
                    messages_received: 11,
                    work: 300,
                    rounds_active: 3,
                    virtual_time: 2.5,
                },
            ],
            rounds: 3,
        }
    }

    #[test]
    fn aggregates() {
        let s = stats2();
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.total_messages(), 15);
        assert_eq!(s.total_bytes(), 120);
        assert_eq!(s.total_work(), 400);
        assert_eq!(s.makespan(), 2.5);
        assert_eq!(s.mean_virtual_time(), 2.0);
        assert_eq!(s.work_imbalance(), 1.5);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = RunStats::default();
        assert_eq!(s.makespan(), 0.0);
        assert_eq!(s.work_imbalance(), 1.0);
        assert_eq!(s.mean_virtual_time(), 0.0);
        s.assert_conservation();
    }

    #[test]
    fn conservation_accepts_balanced_ledgers() {
        // stats2 is balanced by construction: 3 packets / 120 bytes /
        // 15 messages each way.
        stats2().assert_conservation();
    }

    #[test]
    #[should_panic(expected = "wire packet conservation violated")]
    fn conservation_rejects_lost_packets() {
        let mut s = stats2();
        s.per_rank[0].packets_received = 0;
        s.assert_conservation();
    }

    #[test]
    fn merge_adds_counters_and_grows() {
        let mut a = RunStats::default();
        a.merge(&stats2());
        a.merge(&stats2());
        assert_eq!(a.per_rank.len(), 2);
        assert_eq!(a.total_packets(), 6);
        assert_eq!(a.total_bytes(), 240);
        assert_eq!(a.rounds, 6);
        assert_eq!(a.per_rank[1].virtual_time, 2.5, "virtual time maxes");
        a.assert_conservation();
    }
}
