//! Typed collective protocol pieces layered on [`RankCtx`].
//!
//! The paper's two algorithms (and every variant of them in this
//! workspace) share one communication skeleton: a boundary fan-out per
//! superstep, a DONE wave ("wait until all incoming messages are
//! successfully received"), and a k-ary tree allreduce for the global
//! termination test. Before this module each rank program hand-rolled
//! that skeleton; now the pieces live here once, as small composable
//! state machines that *drive* a `RankCtx` but leave message types,
//! charging, and event emission to the algorithm:
//!
//! * [`NeighborExchange`] — per-superstep fan-out under the paper's
//!   three communication schemes (FIAB / FIAC / neighbor-customized),
//!   including the per-destination dedup stamps and FIAC's empty-marker
//!   bookkeeping.
//! * [`DoneWave`] — counts per-phase DONE announcements from a rank
//!   scope.
//! * [`TreeAllreduce`] — a k-ary reduction tree over a [`Monoid`],
//!   replacing the 8-ary trees previously copied into both coloring
//!   programs.
//! * [`fan_out`] — the trivial "same message to each rank in scope"
//!   primitive.
//!
//! None of these pieces send messages on their own timetable: the
//! algorithm decides *when* (preserving bit-identical traces), the
//! collective decides *whether* and *to whom*.

use crate::message::WireMessage;
use crate::program::{Rank, RankCtx};

/// A commutative, associative combine with an identity — the reduction
/// operator of a [`TreeAllreduce`].
pub trait Monoid: Copy {
    /// The neutral element (`identity.combine(x) == x`).
    fn identity() -> Self;
    /// The combine operator.
    fn combine(self, other: Self) -> Self;
}

/// u64 under addition — the "total remaining work" reduction both
/// coloring programs use for their termination test.
impl Monoid for u64 {
    #[inline]
    fn identity() -> Self {
        0
    }

    #[inline]
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

/// Sends `msg` to every rank in `scope`, in order. The caller controls
/// the scope list (and thereby the send order), so ports of existing
/// programs stay byte-identical.
pub fn fan_out<M: WireMessage>(ctx: &mut RankCtx<M>, scope: &[Rank], msg: &M) {
    for &r in scope {
        ctx.send(r, msg);
    }
}

/// What completing one level of a [`TreeAllreduce`] asks the caller to
/// do with the combined value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOutcome<T> {
    /// Interior/leaf rank: forward `value` to `parent`.
    ToParent {
        /// This rank's parent in the reduction tree.
        parent: Rank,
        /// Own contribution combined with all children's.
        value: T,
    },
    /// Root rank: `value` is the global reduction; act on it (typically
    /// broadcast a decision back down the same tree).
    Root {
        /// The global combined value.
        value: T,
    },
}

/// A k-ary tree reduction over a [`Monoid`], keyed by phase so
/// contributions from different phases never mix even when messages
/// from consecutive phases overlap in flight.
///
/// The tree is the classic implicit heap layout: rank `r`'s children
/// are `k*r + 1 ..= k*r + k` (those `< num_ranks`) and its parent is
/// `(r - 1) / k`. The caller owns the message format: it calls
/// [`TreeAllreduce::absorb_child`] when a child's contribution arrives
/// and [`TreeAllreduce::try_complete`] once its own contribution is
/// ready, then sends the resulting value itself.
#[derive(Clone, Debug)]
pub struct TreeAllreduce<T: Monoid> {
    rank: Rank,
    num_children: usize,
    parent: Option<Rank>,
    children: Vec<Rank>,
    /// Per-phase partial sums: (phase, children heard from, accumulated
    /// value). Tiny (≤ a couple of in-flight phases), so a flat vec
    /// beats a map.
    acc: Vec<(u32, usize, T)>,
}

impl<T: Monoid> TreeAllreduce<T> {
    /// A reduction tree of the given arity over ranks `0..num_ranks`,
    /// rooted at rank 0.
    pub fn new(rank: Rank, num_ranks: Rank, arity: u32) -> Self {
        assert!(arity >= 1, "reduction tree arity must be at least 1");
        let children: Vec<Rank> = (1..=arity)
            .map(|i| arity * rank + i)
            .filter(|&c| c < num_ranks)
            .collect();
        TreeAllreduce {
            rank,
            num_children: children.len(),
            parent: (rank > 0).then(|| (rank - 1) / arity),
            children,
            acc: Vec::new(),
        }
    }

    /// This rank's parent in the tree (`None` at the root).
    #[inline]
    pub fn parent(&self) -> Option<Rank> {
        self.parent
    }

    /// This rank's children in the tree, ascending.
    #[inline]
    pub fn children(&self) -> &[Rank] {
        &self.children
    }

    /// Records a child's contribution for `phase`.
    pub fn absorb_child(&mut self, phase: u32, value: T) {
        match self.acc.iter_mut().find(|e| e.0 == phase) {
            Some(entry) => {
                entry.1 += 1;
                entry.2 = entry.2.combine(value);
            }
            None => self.acc.push((phase, 1, value)),
        }
    }

    /// Snapshot accessor: the in-flight per-phase partial sums as
    /// `(phase, children heard, accumulated value)` triples. In-flight
    /// reductions are algorithm state — a checkpoint that omits them
    /// restores a rank that waits forever for contributions its peers
    /// already sent.
    pub fn in_flight(&self) -> &[(u32, usize, T)] {
        &self.acc
    }

    /// Restore accessor: reinstates partial sums captured by
    /// [`TreeAllreduce::in_flight`] into a freshly built tree.
    pub fn restore_in_flight(&mut self, acc: Vec<(u32, usize, T)>) {
        self.acc = acc;
    }

    /// Once every child of `phase` has been absorbed, combines in this
    /// rank's own contribution and says what to do with the result;
    /// `None` while contributions are still outstanding. Completing a
    /// phase clears its slot, so the tree is reusable across phases.
    pub fn try_complete(&mut self, phase: u32, own: T) -> Option<ReduceOutcome<T>> {
        let pos = self.acc.iter().position(|e| e.0 == phase);
        let got = pos.map_or(0, |i| self.acc[i].1);
        if got < self.num_children {
            return None;
        }
        let value = match pos {
            Some(i) => self.acc.swap_remove(i).2.combine(own),
            None => own,
        };
        Some(match self.parent {
            Some(parent) => ReduceOutcome::ToParent { parent, value },
            None => {
                debug_assert_eq!(self.rank, 0, "parentless rank must be the root");
                ReduceOutcome::Root { value }
            }
        })
    }
}

/// Counts per-phase DONE announcements — the paper's "wait until all
/// incoming messages are successfully received" wave, generalized to
/// any rank scope.
///
/// The caller records one announcement per sender via
/// [`DoneWave::record`] and polls [`DoneWave::ready`] against the
/// expected scope size. Phases are independent, so a fast neighbor's
/// next-phase DONE arriving early doesn't corrupt the current wave.
#[derive(Clone, Debug, Default)]
pub struct DoneWave {
    /// (phase, announcements heard). Flat vec for the same reason as
    /// [`TreeAllreduce::acc`].
    counts: Vec<(u32, usize)>,
}

impl DoneWave {
    /// An empty wave counter.
    pub fn new() -> Self {
        DoneWave::default()
    }

    /// Records one DONE announcement for `phase`.
    pub fn record(&mut self, phase: u32) {
        match self.counts.iter_mut().find(|e| e.0 == phase) {
            Some(entry) => entry.1 += 1,
            None => self.counts.push((phase, 1)),
        }
    }

    /// Announcements heard so far for `phase`.
    pub fn count(&self, phase: u32) -> usize {
        self.counts.iter().find(|e| e.0 == phase).map_or(0, |e| e.1)
    }

    /// Whether all `expected` announcements for `phase` have arrived.
    /// (With `expected == 0` the wave is trivially ready.)
    pub fn ready(&self, phase: u32, expected: usize) -> bool {
        self.count(phase) >= expected
    }

    /// Drops the counter for a completed `phase`, keeping the vec tiny.
    pub fn clear(&mut self, phase: u32) {
        if let Some(i) = self.counts.iter().position(|e| e.0 == phase) {
            self.counts.swap_remove(i);
        }
    }

    /// Snapshot accessor: the in-flight `(phase, announcements heard)`
    /// counters. Like [`TreeAllreduce::in_flight`], these are algorithm
    /// state: DONE announcements consumed before a checkpoint are never
    /// re-sent, so dropping the counters deadlocks the restored wave.
    pub fn in_flight(&self) -> &[(u32, usize)] {
        &self.counts
    }

    /// Restore accessor: reinstates counters captured by
    /// [`DoneWave::in_flight`].
    pub fn restore_in_flight(&mut self, counts: Vec<(u32, usize)>) {
        self.counts = counts;
    }
}

/// The paper's three communication schemes for publishing boundary
/// information (§ "communication customization").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FanoutScheme {
    /// "First In All Broadcast": every publish goes to every other
    /// rank, no dedup.
    Fiab,
    /// "First In All Customized": publish to every other rank at most
    /// once per superstep; ranks that received no content get an
    /// explicit empty marker at superstep end so they can count
    /// arrivals.
    Fiac,
    /// Neighbor-customized: publish only to ranks owning a ghost copy,
    /// at most once per superstep.
    Neighbor,
}

/// Per-superstep boundary fan-out under a [`FanoutScheme`].
///
/// Owns the two pieces of dedup state the schemes need — a stamped
/// `dest_seen` array (O(1) superstep reset, no clearing loop) and
/// FIAC's `content_sent` markers — and leaves everything else (what to
/// send, when, what it costs) to the algorithm.
#[derive(Clone, Debug)]
pub struct NeighborExchange {
    scheme: FanoutScheme,
    rank: Rank,
    num_ranks: Rank,
    /// Stamp-based dedup: `dest_seen[r] == dest_stamp` ⇔ already sent
    /// to `r` this superstep.
    dest_seen: Vec<u32>,
    dest_stamp: u32,
    /// FIAC only: which ranks received content this superstep (so
    /// [`NeighborExchange::finish_superstep`] knows who still needs an
    /// empty marker).
    content_sent: Vec<bool>,
}

impl NeighborExchange {
    /// A fan-out helper for one rank under the given scheme.
    pub fn new(scheme: FanoutScheme, rank: Rank, num_ranks: Rank) -> Self {
        NeighborExchange {
            scheme,
            rank,
            num_ranks,
            dest_seen: vec![0; num_ranks as usize],
            dest_stamp: 0,
            content_sent: vec![false; num_ranks as usize],
        }
    }

    /// The scheme this exchange runs under.
    #[inline]
    pub fn scheme(&self) -> FanoutScheme {
        self.scheme
    }

    /// The set of ranks this rank communicates with under the scheme:
    /// the partition's neighbor ranks for [`FanoutScheme::Neighbor`],
    /// everyone else for the FIA* schemes.
    pub fn scope(&self, neighbor_ranks: &[Rank]) -> Vec<Rank> {
        match self.scheme {
            FanoutScheme::Neighbor => neighbor_ranks.to_vec(),
            FanoutScheme::Fiab | FanoutScheme::Fiac => {
                (0..self.num_ranks).filter(|&r| r != self.rank).collect()
            }
        }
    }

    /// Resets per-superstep state (FIAC's content markers). Call once at
    /// the top of every superstep, before any
    /// [`NeighborExchange::publish`].
    pub fn begin_superstep(&mut self) {
        if self.scheme == FanoutScheme::Fiac {
            self.content_sent.iter_mut().for_each(|s| *s = false);
        }
    }

    /// Publishes one boundary datum: under FIAB it goes to every other
    /// rank; under FIAC/Neighbor it goes to each rank in `ghost_owners`
    /// (the owners of this vertex's ghost copies, with repeats) exactly
    /// once — the dedup stamp is per publish call, so successive
    /// publishes to the same owner each get their own message.
    /// `ghost_owners` is an iterator, not a `DistGraph`, so the runtime
    /// stays free of partition-crate types.
    pub fn publish<M: WireMessage>(
        &mut self,
        ctx: &mut RankCtx<M>,
        ghost_owners: impl Iterator<Item = Rank>,
        msg: &M,
    ) {
        match self.scheme {
            FanoutScheme::Fiab => {
                for r in 0..self.num_ranks {
                    if r != self.rank {
                        ctx.send(r, msg);
                    }
                }
            }
            FanoutScheme::Fiac | FanoutScheme::Neighbor => {
                self.dest_stamp += 1;
                for owner in ghost_owners {
                    if self.dest_seen[owner as usize] != self.dest_stamp {
                        self.dest_seen[owner as usize] = self.dest_stamp;
                        ctx.send(owner, msg);
                        if self.scheme == FanoutScheme::Fiac {
                            self.content_sent[owner as usize] = true;
                        }
                    }
                }
            }
        }
    }

    /// FIAC superstep end: sends `empty_msg` to every rank (other than
    /// self) that received no content this superstep, so receivers can
    /// count one arrival per sender per superstep. No-op under the
    /// other schemes.
    pub fn finish_superstep<M: WireMessage>(&mut self, ctx: &mut RankCtx<M>, empty_msg: &M) {
        if self.scheme != FanoutScheme::Fiac {
            return;
        }
        for r in 0..self.num_ranks {
            if r != self.rank && !self.content_sent[r as usize] {
                ctx.send(r, empty_msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rank: Rank, n: Rank) -> RankCtx<u32> {
        RankCtx::new(rank, n, true, cmg_obs::RecorderHandle::noop())
    }

    fn sent_dests(ctx: &mut RankCtx<u32>) -> Vec<Rank> {
        let (_, packets) = ctx.end_round();
        packets.iter().map(|p| p.dst).collect()
    }

    #[test]
    fn tree_shape_matches_implicit_heap() {
        let t: TreeAllreduce<u64> = TreeAllreduce::new(0, 20, 8);
        assert_eq!(t.parent(), None);
        assert_eq!(t.children(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let t: TreeAllreduce<u64> = TreeAllreduce::new(2, 20, 8);
        assert_eq!(t.parent(), Some(0));
        assert_eq!(t.children(), &[17, 18, 19]);
        let t: TreeAllreduce<u64> = TreeAllreduce::new(9, 20, 8);
        assert_eq!(t.parent(), Some(1));
        assert!(t.children().is_empty());
        // Binary tree, for arity generality.
        let t: TreeAllreduce<u64> = TreeAllreduce::new(1, 7, 2);
        assert_eq!(t.parent(), Some(0));
        assert_eq!(t.children(), &[3, 4]);
    }

    #[test]
    fn reduce_combines_children_then_own() {
        let mut t: TreeAllreduce<u64> = TreeAllreduce::new(0, 3, 8);
        assert_eq!(t.try_complete(0, 5), None);
        t.absorb_child(0, 10);
        assert_eq!(t.try_complete(0, 5), None);
        t.absorb_child(0, 100);
        assert_eq!(
            t.try_complete(0, 5),
            Some(ReduceOutcome::Root { value: 115 })
        );
        // The slot was cleared: the next phase starts fresh.
        t.absorb_child(1, 1);
        t.absorb_child(1, 2);
        assert_eq!(t.try_complete(1, 0), Some(ReduceOutcome::Root { value: 3 }));
    }

    #[test]
    fn reduce_interleaved_phases_stay_separate() {
        let mut t: TreeAllreduce<u64> = TreeAllreduce::new(1, 20, 8);
        // Rank 1's children are 9..=16 (8 of them).
        for v in 0..8u64 {
            t.absorb_child(7, v);
            if v < 4 {
                t.absorb_child(8, 100 + v);
            }
        }
        assert_eq!(
            t.try_complete(7, 1000),
            Some(ReduceOutcome::ToParent {
                parent: 0,
                value: 1028
            })
        );
        assert_eq!(t.try_complete(8, 0), None);
        for v in 4..8u64 {
            t.absorb_child(8, 100 + v);
        }
        assert_eq!(
            t.try_complete(8, 0),
            Some(ReduceOutcome::ToParent {
                parent: 0,
                value: 828
            })
        );
    }

    #[test]
    fn leaf_completes_immediately() {
        let mut t: TreeAllreduce<u64> = TreeAllreduce::new(9, 10, 8);
        assert_eq!(
            t.try_complete(0, 42),
            Some(ReduceOutcome::ToParent {
                parent: 1,
                value: 42
            })
        );
    }

    #[test]
    fn done_wave_counts_per_phase() {
        let mut w = DoneWave::new();
        assert!(w.ready(0, 0));
        assert!(!w.ready(0, 2));
        w.record(0);
        w.record(1);
        w.record(0);
        assert_eq!(w.count(0), 2);
        assert_eq!(w.count(1), 1);
        assert!(w.ready(0, 2));
        assert!(!w.ready(1, 2));
        w.clear(0);
        assert_eq!(w.count(0), 0);
        assert_eq!(w.count(1), 1);
    }

    #[test]
    fn fiab_publishes_to_everyone() {
        let mut x = NeighborExchange::new(FanoutScheme::Fiab, 1, 4);
        let mut c = ctx(1, 4);
        x.begin_superstep();
        x.publish(&mut c, [3u32].into_iter(), &7);
        let dests = sent_dests(&mut c);
        assert_eq!(dests, vec![0, 2, 3]);
        let mut c = ctx(1, 4);
        x.finish_superstep(&mut c, &0);
        assert!(sent_dests(&mut c).is_empty());
    }

    #[test]
    fn fiac_dedups_per_publish_and_sends_empties() {
        let mut x = NeighborExchange::new(FanoutScheme::Fiac, 1, 4);
        let mut c = ctx(1, 4);
        x.begin_superstep();
        // Repeated owners within one publish collapse to one send…
        x.publish(&mut c, [3u32, 3].into_iter(), &7);
        // …but a second publish (a different datum) sends again.
        x.publish(&mut c, [3u32].into_iter(), &8);
        x.finish_superstep(&mut c, &0);
        let (_, packets) = c.end_round();
        // Content to 3 (twice, bundled into one packet); empties to 0, 2.
        let dests: Vec<Rank> = packets.iter().map(|p| p.dst).collect();
        assert_eq!(dests, vec![0, 2, 3]);
        let logical: Vec<u32> = packets.iter().map(|p| p.logical).collect();
        assert_eq!(logical, vec![1, 1, 2]);
        // Next superstep resets content markers: 3 gets an empty now.
        let mut c = ctx(1, 4);
        x.begin_superstep();
        x.publish(&mut c, [0u32].into_iter(), &9);
        x.finish_superstep(&mut c, &0);
        assert_eq!(sent_dests(&mut c), vec![0, 2, 3]);
    }

    #[test]
    fn neighbor_scheme_dedups_without_empties() {
        let mut x = NeighborExchange::new(FanoutScheme::Neighbor, 0, 4);
        let mut c = ctx(0, 4);
        x.begin_superstep();
        x.publish(&mut c, [2u32, 1, 2].into_iter(), &7);
        x.finish_superstep(&mut c, &0);
        assert_eq!(sent_dests(&mut c), vec![1, 2]);
    }

    #[test]
    fn scope_by_scheme() {
        let neighbors = vec![0, 2];
        let x = NeighborExchange::new(FanoutScheme::Neighbor, 1, 4);
        assert_eq!(x.scope(&neighbors), vec![0, 2]);
        let x = NeighborExchange::new(FanoutScheme::Fiab, 1, 4);
        assert_eq!(x.scope(&neighbors), vec![0, 2, 3]);
        let x = NeighborExchange::new(FanoutScheme::Fiac, 1, 4);
        assert_eq!(x.scope(&neighbors), vec![0, 2, 3]);
    }

    #[test]
    fn fan_out_sends_in_scope_order() {
        let mut c = ctx(0, 4);
        fan_out(&mut c, &[3, 1, 2], &5);
        assert_eq!(sent_dests(&mut c), vec![1, 2, 3]);
    }
}
