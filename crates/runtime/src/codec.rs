//! Declarative wire codecs: the `WireCodec` layer of the distributed
//! substrate.
//!
//! Every algorithm message enum in the workspace shares one wire shape —
//! a one-byte tag followed by fixed-width little-endian fields — and
//! before this module each crate hand-wrote the three [`WireMessage`]
//! methods for it, four times over. [`wire_codec!`] collapses those
//! impls into a declarative field list: the macro derives `encode`,
//! `decode`, and `encoded_len` from the `tag => Variant { field: type }`
//! table, so a message's wire format is stated exactly once and cannot
//! drift between the three methods.
//!
//! Field types implement [`WireField`] (fixed-width scalars); variants
//! may be unit (`1 => Empty`) or struct-like. The generated format is
//! byte-identical to the previous hand-written impls: tag byte, then
//! each field in declaration order.
//!
//! [`WireMessage`]: crate::message::WireMessage

// Re-exported for the macro expansion (callers need not depend on
// `bytes` themselves).
pub use bytes::{Buf, BufMut};

/// A fixed-width scalar that can appear as a field in a [`wire_codec!`]
/// message: it knows its exact wire size and how to read/write itself
/// in little-endian order.
///
/// [`wire_codec!`]: crate::wire_codec
pub trait WireField: Sized {
    /// Exact number of bytes [`WireField::put`] writes.
    const WIRE_LEN: usize;

    /// Appends this field's encoding to `buf`.
    fn put(&self, buf: &mut impl BufMut);

    /// Reads one field from the front of `buf`, or `None` if truncated.
    fn get(buf: &mut impl Buf) -> Option<Self>;
}

impl WireField for u8 {
    const WIRE_LEN: usize = 1;

    #[inline]
    fn put(&self, buf: &mut impl BufMut) {
        buf.put_u8(*self);
    }

    #[inline]
    fn get(buf: &mut impl Buf) -> Option<Self> {
        buf.has_remaining().then(|| buf.get_u8())
    }
}

impl WireField for u32 {
    const WIRE_LEN: usize = 4;

    #[inline]
    fn put(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(*self);
    }

    #[inline]
    fn get(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 4).then(|| buf.get_u32_le())
    }
}

impl WireField for u64 {
    const WIRE_LEN: usize = 8;

    #[inline]
    fn put(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self);
    }

    #[inline]
    fn get(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 8).then(|| buf.get_u64_le())
    }
}

impl WireField for f64 {
    const WIRE_LEN: usize = 8;

    #[inline]
    fn put(&self, buf: &mut impl BufMut) {
        buf.put_f64_le(*self);
    }

    #[inline]
    fn get(buf: &mut impl Buf) -> Option<Self> {
        (buf.remaining() >= 8).then(|| buf.get_f64_le())
    }
}

/// Declares a message enum together with its [`WireMessage`] impl from a
/// `tag => Variant { field: type }` table.
///
/// ```
/// cmg_runtime::wire_codec! {
///     /// Example protocol.
///     #[derive(Clone, Copy, Debug, PartialEq, Eq)]
///     pub enum DemoMsg {
///         /// A payload-bearing variant.
///         0 => Put {
///             /// Key field.
///             key: u32,
///             /// Value field.
///             value: u64,
///         },
///         /// A unit variant.
///         1 => Flush,
///     }
/// }
/// # use cmg_runtime::WireMessage;
/// let m = DemoMsg::Put { key: 7, value: 9 };
/// assert_eq!(m.encoded_len(), 1 + 4 + 8);
/// ```
///
/// The generated wire format is: the `u8` tag, then each field in
/// declaration order, little-endian ([`WireField`]). `encoded_len` is
/// computed from the declared field list, so the declared size and the
/// bytes actually written cannot disagree. Unknown tags and truncated
/// buffers decode to `None`.
///
/// [`WireMessage`]: crate::message::WireMessage
#[macro_export]
macro_rules! wire_codec {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $(
                $(#[$vmeta:meta])*
                $tag:literal => $variant:ident $({
                    $( $(#[$fmeta:meta])* $field:ident : $fty:ty ),* $(,)?
                })?
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis enum $name {
            $(
                $(#[$vmeta])*
                $variant $({ $( $(#[$fmeta])* $field: $fty ),* })?,
            )*
        }

        impl $crate::WireMessage for $name {
            fn encode(&self, buf: &mut impl $crate::codec::BufMut) {
                match self {
                    $(
                        $name::$variant $({ $($field),* })? => {
                            $crate::codec::WireField::put(&($tag as u8), buf);
                            $($( $crate::codec::WireField::put($field, buf); )*)?
                        }
                    )*
                }
            }

            fn decode(buf: &mut impl $crate::codec::Buf) -> Option<Self> {
                if !$crate::codec::Buf::has_remaining(buf) {
                    return None;
                }
                match $crate::codec::Buf::get_u8(buf) {
                    $(
                        $tag => Some($name::$variant $({ $(
                            $field: $crate::codec::WireField::get(buf)?,
                        )* })?),
                    )*
                    _ => None,
                }
            }

            fn encoded_len(&self) -> usize {
                match self {
                    $(
                        $name::$variant $({ $($field: _),* })? =>
                            1usize $($( + <$fty as $crate::codec::WireField>::WIRE_LEN )*)?,
                    )*
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::message::{decode_all, WireMessage};
    use bytes::BytesMut;

    wire_codec! {
        /// Test protocol exercising unit and struct variants.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum TestMsg {
            /// Mixed-width fields.
            0 => Pair { a: u32, b: u64 },
            /// Unit variant: tag byte only.
            1 => Ping,
            /// Single byte field.
            2 => Tiny { x: u8 },
        }
    }

    #[test]
    fn declared_lengths_match_encoding() {
        let msgs = [
            TestMsg::Pair { a: 1, b: 2 },
            TestMsg::Ping,
            TestMsg::Tiny { x: 3 },
        ];
        for m in &msgs {
            let mut buf = BytesMut::new();
            m.encode(&mut buf);
            assert_eq!(buf.len(), m.encoded_len(), "{m:?}");
        }
        assert_eq!(TestMsg::Pair { a: 0, b: 0 }.encoded_len(), 13);
        assert_eq!(TestMsg::Ping.encoded_len(), 1);
        assert_eq!(TestMsg::Tiny { x: 0 }.encoded_len(), 2);
    }

    #[test]
    fn bundle_round_trip() {
        let msgs = vec![
            TestMsg::Ping,
            TestMsg::Pair {
                a: u32::MAX,
                b: u64::MAX,
            },
            TestMsg::Tiny { x: 255 },
            TestMsg::Pair { a: 0, b: 1 },
        ];
        let mut buf = BytesMut::new();
        for m in &msgs {
            m.encode(&mut buf);
        }
        let decoded: Vec<TestMsg> = decode_all(buf.freeze()).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn unknown_tag_and_truncation_rejected() {
        let mut bogus = BytesMut::new();
        bytes::BufMut::put_u8(&mut bogus, 9);
        bytes::BufMut::put_u32_le(&mut bogus, 0);
        assert!(decode_all::<TestMsg>(bogus.freeze()).is_none());
        let mut full = BytesMut::new();
        TestMsg::Pair { a: 5, b: 6 }.encode(&mut full);
        let bytes = full.freeze();
        for cut in 1..bytes.len() {
            assert!(
                decode_all::<TestMsg>(bytes.slice(0..cut)).is_none(),
                "cut {cut}"
            );
        }
    }
}
