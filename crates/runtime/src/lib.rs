//! # cmg-runtime
//!
//! The distributed-memory substrate of the `cmg` workspace: a
//! message-passing runtime that stands in for MPI on the Blue Gene/P used
//! by Çatalyürek et al. (IPPS 2011).
//!
//! Algorithms are written once against the [`RankProgram`] trait — a
//! round/superstep model in which messages sent in round *t* are delivered
//! at the start of round *t + 1* — and can then be executed by either of
//! two engines:
//!
//! * [`SimEngine`]: a deterministic discrete-event simulation. Every rank's
//!   compute and communication is charged against an α–β–γ [`CostModel`],
//!   producing *simulated* times for rank counts far beyond the host's core
//!   count (the paper runs up to 16,384 processors). The round loop is an
//!   active-set scheduler — quiet rounds cost O(active ranks), not O(p) —
//!   and can optionally step runnable ranks on a persistent worker pool
//!   while keeping results bit-identical.
//! * [`ThreadedEngine`]: one OS thread per rank with real channels,
//!   measuring wall-clock time — used to validate that the algorithms are
//!   correct under true concurrency.
//!
//! The runtime also implements the paper's key communication optimization:
//! **message bundling** ("aggregating frequent, small messages into
//! infrequent, large messages"). All messages a rank sends to the same
//! destination within one round share a single wire packet; the bundling
//! can be disabled per run for the ablation study.

pub mod bundle;
pub mod codec;
pub mod collectives;
pub mod cost;
pub mod delivery;
pub mod message;
pub mod program;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod threaded;

pub use bundle::OutBox;
pub use cmg_obs::SchedStats;
pub use codec::WireField;
pub use collectives::{
    fan_out, DoneWave, FanoutScheme, Monoid, NeighborExchange, ReduceOutcome, TreeAllreduce,
};
pub use cost::{CostModel, MachinePreset};
pub use delivery::{DeliveryKey, DeliveryPolicy, DeliveryScript};
pub use message::WireMessage;
pub use program::{Rank, RankCtx, RankProgram, Status, WarmStart};
pub use sim::{RoundTrace, SimEngine, SimResult};
pub use snapshot::ProgramSnapshot;
pub use stats::{RankStats, RunStats};
pub use threaded::{ThreadedEngine, ThreadedResult};

/// Run-wide engine configuration shared by both engines.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Cost model used by the simulation engine (ignored by the threaded
    /// engine, which measures real time).
    pub cost: CostModel,
    /// Bundle all same-destination messages of a round into one wire packet
    /// (the paper's aggregation optimization). When `false`, every logical
    /// message pays its own latency — the ablation baseline.
    pub bundling: bool,
    /// Model a barrier at the end of every round (BSP-style synchronous
    /// supersteps). When `false`, ranks progress asynchronously and only
    /// wait for the messages they actually receive.
    pub sync_rounds: bool,
    /// Step runnable ranks in parallel inside the simulation engine on a
    /// persistent worker pool (spawned once per run, workers parked
    /// between rounds). Results and virtual times are identical to the
    /// sequential simulation; only host wall time changes.
    pub parallel_sim: bool,
    /// Safety cap on the number of rounds before the engine aborts
    /// (guards against non-terminating programs in tests).
    pub max_rounds: u64,
    /// Record a per-round trace (rounds × aggregate counters) in the
    /// simulation result — the raw material for time-breakdown plots.
    pub record_trace: bool,
    /// Mailbox delivery order (simulation engine only). The default
    /// canonical order is free; adversarial policies (see
    /// [`delivery::DeliveryPolicy`]) perturb delivery for correctness
    /// checking and pay one extra sort per stepped rank.
    pub delivery: DeliveryPolicy,
    /// Structured event recorder (see `cmg-obs`). Defaults to the
    /// no-op recorder: engines check one cached bool and skip all event
    /// construction, so uninstrumented runs pay nothing.
    pub recorder: cmg_obs::RecorderHandle,
    /// Live telemetry for the net engine: workers piggyback per-rank
    /// phase/link counters on heartbeat beacons. Ignored by the sim and
    /// threaded engines, which have no beacons.
    pub net_telemetry: bool,
    /// Checkpoint cadence in rounds. In the sim and threaded engines
    /// this drives the **equivalence oracle**: at every `k`-round edge
    /// each rank program is round-tripped through
    /// `snapshot → encode → decode → restore` in place, so any snapshot
    /// omission shows up as a divergence from the uninterrupted run
    /// (which must be bit-identical). The net engine uses the same
    /// cadence for real checkpoints (see `cmg-net`).
    pub checkpoint_every: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cost: CostModel::blue_gene_p(),
            bundling: true,
            sync_rounds: false,
            parallel_sim: false,
            max_rounds: 1_000_000,
            record_trace: false,
            delivery: DeliveryPolicy::default(),
            recorder: cmg_obs::RecorderHandle::noop(),
            net_telemetry: true,
            checkpoint_every: None,
        }
    }
}

impl EngineConfig {
    /// Config with the given machine preset.
    pub fn with_preset(preset: MachinePreset) -> Self {
        EngineConfig {
            cost: CostModel::preset(preset),
            ..Default::default()
        }
    }

    /// The same config with events routed to `recorder`.
    pub fn with_recorder(mut self, recorder: cmg_obs::RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// The same config with the given mailbox delivery policy.
    pub fn with_delivery(mut self, delivery: DeliveryPolicy) -> Self {
        self.delivery = delivery;
        self
    }
}
