//! The α–β–γ communication/computation cost model driving the simulation
//! engine's virtual clock.
//!
//! A wire bundle of `b` bytes sent from rank *s* to rank *d* arrives at
//! `t_send + α + β·b`; the sender's own clock additionally advances by a
//! small per-bundle CPU overhead `o`. Compute is charged as `γ` per *work
//! unit*, where algorithms charge one unit per adjacency-entry touched
//! (the natural unit for graph algorithms whose sequential complexity is
//! `O(|E|)`). A barrier among `p` ranks costs `α·⌈log₂ p⌉` on top of
//! max-synchronizing the clocks.

/// Named machine parameterizations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachinePreset {
    /// IBM Blue Gene/P (the paper's Intrepid): 850 MHz PPC450 cores, 3-D
    /// torus with ~3.5 µs MPI latency and ~375 MB/s per-link bandwidth.
    BlueGeneP,
    /// A commodity InfiniBand-era cluster: faster cores and links, higher
    /// relative latency gap.
    CommodityCluster,
    /// Free communication (α = β = o = 0, γ = 1): virtual time equals
    /// charged work — handy for algorithm-only unit tests.
    ComputeOnly,
}

/// Cost-model constants. All times in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Network latency per wire bundle.
    pub alpha: f64,
    /// Per-byte transfer time (inverse bandwidth).
    pub beta: f64,
    /// Compute time per charged work unit.
    pub gamma: f64,
    /// Sender-side CPU overhead per wire bundle (message injection).
    pub send_overhead: f64,
}

impl CostModel {
    /// Blue Gene/P-like constants (see [`MachinePreset::BlueGeneP`]).
    ///
    /// γ is calibrated so a one-rank run of the sequential matching kernel
    /// on the paper's grid sizes lands in the sub-second range its Figure
    /// 5.2 reports: a PPC450 spends a handful of ns per adjacency touch.
    pub fn blue_gene_p() -> Self {
        CostModel {
            alpha: 3.5e-6,
            beta: 1.0 / 375.0e6,
            gamma: 6.0e-9,
            send_overhead: 0.6e-6,
        }
    }

    /// Commodity-cluster constants.
    pub fn commodity_cluster() -> Self {
        CostModel {
            alpha: 15.0e-6,
            beta: 1.0e-9,
            gamma: 1.5e-9,
            send_overhead: 1.0e-6,
        }
    }

    /// Zero-communication-cost model for algorithm tests.
    pub fn compute_only() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            send_overhead: 0.0,
        }
    }

    /// Looks up a preset.
    pub fn preset(p: MachinePreset) -> Self {
        match p {
            MachinePreset::BlueGeneP => Self::blue_gene_p(),
            MachinePreset::CommodityCluster => Self::commodity_cluster(),
            MachinePreset::ComputeOnly => Self::compute_only(),
        }
    }

    /// Time for a bundle of `bytes` to traverse the network.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Cost of a full barrier among `p` ranks (log-tree of latencies).
    #[inline]
    pub fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.alpha * (usize::BITS - (p - 1).leading_zeros()) as f64
        }
    }

    /// Compute time for `work` charged units.
    #[inline]
    pub fn compute_time(&self, work: u64) -> f64 {
        self.gamma * work as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let c = CostModel::blue_gene_p();
        let t0 = c.transfer_time(0);
        let t1 = c.transfer_time(1000);
        assert_eq!(t0, c.alpha);
        assert!((t1 - t0 - 1000.0 * c.beta).abs() < 1e-18);
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let c = CostModel::blue_gene_p();
        assert_eq!(c.barrier_time(1), 0.0);
        assert_eq!(c.barrier_time(2), c.alpha);
        assert_eq!(c.barrier_time(1024), 10.0 * c.alpha);
        assert_eq!(c.barrier_time(1025), 11.0 * c.alpha);
    }

    #[test]
    fn compute_only_charges_work_directly() {
        let c = CostModel::compute_only();
        assert_eq!(c.compute_time(42), 42.0);
        assert_eq!(c.transfer_time(100), 0.0);
        assert_eq!(c.barrier_time(64), 0.0);
    }

    #[test]
    fn presets_resolve() {
        assert_eq!(
            CostModel::preset(MachinePreset::BlueGeneP),
            CostModel::blue_gene_p()
        );
        assert_eq!(
            CostModel::preset(MachinePreset::CommodityCluster),
            CostModel::commodity_cluster()
        );
    }
}
