//! Implicit distributed construction of 5-point grid graphs.
//!
//! §5.1 of the paper: "The grid graphs were generated in parallel,
//! distributed in a two-dimensional fashion among the available
//! processors. Each processor owns a subgraph corresponding to an
//! appropriate portion of the grid." This module does exactly that: it
//! builds every rank's [`DistGraph`] analytically from the grid geometry,
//! never materializing the global graph — which is what makes the
//! paper-scale weak-scaling inputs fit in one host's memory.
//!
//! The construction is bit-identical to
//! `DistGraph::build_all(assign_weights(grid2d(..)), grid2d_partition(..))`
//! (verified by tests), including the ghost discovery order and the
//! deterministic edge weights.

use crate::dist::{DistGraph, Rank};
use cmg_graph::util::FxHashMap;
use cmg_graph::weights::edge_unit_random;
use cmg_graph::VertexId;

/// Block boundaries used by `grid2d_partition`: index range owned by block
/// `b` out of `nb` blocks over `n` items.
fn block_range(n: usize, nb: u32, b: u32) -> (usize, usize) {
    let per = n.div_ceil(nb as usize).max(1);
    let lo = (b as usize * per).min(n);
    let hi = if b == nb - 1 {
        n
    } else {
        ((b as usize + 1) * per).min(n)
    };
    (lo, hi)
}

/// Owner rank of grid vertex `(i, j)` under the `pr × pc` uniform 2-D
/// distribution (identical to `grid2d_partition`).
#[inline]
fn owner_of(i: usize, j: usize, rows: usize, cols: usize, pr: u32, pc: u32) -> Rank {
    let block_r = rows.div_ceil(pr as usize).max(1);
    let block_c = cols.div_ceil(pc as usize).max(1);
    let bi = ((i / block_r) as u32).min(pr - 1);
    let bj = ((j / block_c) as u32).min(pc - 1);
    bi * pc + bj
}

/// Builds all ranks' local graphs of a `rows × cols` 5-point grid
/// distributed over a `pr × pc` processor grid, with uniform-random edge
/// weights in `(0, 1)` drawn deterministically from `weight_seed` (pass
/// `None` for an unweighted grid, as the coloring experiments use).
///
/// Equivalent to — but far cheaper than — building the global
/// [`cmg_graph::generators::grid2d`] graph, weighting it with
/// [`cmg_graph::weights::assign_weights`], and distributing it with
/// [`DistGraph::build_all`] under
/// [`crate::simple::grid2d_partition`].
pub fn grid2d_dist(
    rows: usize,
    cols: usize,
    pr: u32,
    pc: u32,
    weight_seed: Option<u64>,
) -> Vec<DistGraph> {
    assert!(pr > 0 && pc > 0);
    let num_ranks = pr * pc;
    (0..num_ranks)
        .map(|rank| build_rank(rows, cols, pr, pc, rank, weight_seed))
        .collect()
}

/// Builds one rank's local graph (see [`grid2d_dist`]); usable on its own
/// for truly rank-local construction.
pub fn build_rank(
    rows: usize,
    cols: usize,
    pr: u32,
    pc: u32,
    rank: Rank,
    weight_seed: Option<u64>,
) -> DistGraph {
    let (bi, bj) = (rank / pc, rank % pc);
    let (r0, r1) = block_range(rows, pr, bi);
    let (c0, c1) = block_range(cols, pc, bj);
    let n_local = (r1 - r0) * (c1 - c0);
    let id = |i: usize, j: usize| (i * cols + j) as VertexId;

    let mut global_ids: Vec<VertexId> = Vec::with_capacity(n_local);
    let mut global_to_local: FxHashMap<VertexId, u32> = FxHashMap::default();
    for i in r0..r1 {
        for j in c0..c1 {
            global_to_local.insert(id(i, j), global_ids.len() as u32);
            global_ids.push(id(i, j));
        }
    }

    // Neighbors of (i, j) in ascending global-id order: N, W, E, S.
    let neighbors_of = |i: usize, j: usize| {
        let mut out: [Option<(usize, usize)>; 4] = [None; 4];
        if i > 0 {
            out[0] = Some((i - 1, j));
        }
        if j > 0 {
            out[1] = Some((i, j - 1));
        }
        if j + 1 < cols {
            out[2] = Some((i, j + 1));
        }
        if i + 1 < rows {
            out[3] = Some((i + 1, j));
        }
        out
    };
    let in_block = |i: usize, j: usize| i >= r0 && i < r1 && j >= c0 && j < c1;

    // Ghost discovery in the same order `DistGraph::build_all` uses.
    let mut ghost_owner: Vec<Rank> = Vec::new();
    for i in r0..r1 {
        for j in c0..c1 {
            for (ni, nj) in neighbors_of(i, j).into_iter().flatten() {
                if !in_block(ni, nj) && !global_to_local.contains_key(&id(ni, nj)) {
                    let idx = (n_local + ghost_owner.len()) as u32;
                    global_to_local.insert(id(ni, nj), idx);
                    global_ids.push(id(ni, nj));
                    ghost_owner.push(owner_of(ni, nj, rows, cols, pr, pc));
                }
            }
        }
    }

    // Local CSR.
    let mut xadj = Vec::with_capacity(n_local + 1);
    xadj.push(0usize);
    let mut adj = Vec::with_capacity(4 * n_local);
    let weighted = weight_seed.is_some();
    let mut weights = Vec::with_capacity(if weighted { 4 * n_local } else { 0 });
    let mut is_boundary = vec![false; n_local];
    for i in r0..r1 {
        for j in c0..c1 {
            let v = id(i, j);
            let vl = global_to_local[&v] as usize;
            for (ni, nj) in neighbors_of(i, j).into_iter().flatten() {
                let u = id(ni, nj);
                let ul = global_to_local[&u];
                adj.push(ul);
                if let Some(seed) = weight_seed {
                    let (a, b) = if v < u { (v, u) } else { (u, v) };
                    weights.push(edge_unit_random(a, b, seed));
                }
                if ul as usize >= n_local {
                    is_boundary[vl] = true;
                }
            }
            xadj.push(adj.len());
        }
    }

    let mut neighbor_ranks: Vec<Rank> = ghost_owner.clone();
    neighbor_ranks.sort_unstable();
    neighbor_ranks.dedup();

    DistGraph {
        rank,
        num_ranks: pr * pc,
        n_local,
        xadj,
        adj,
        weights,
        global_ids,
        ghost_owner,
        global_to_local,
        is_boundary,
        neighbor_ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::grid2d_partition;
    use cmg_graph::generators::grid2d;
    use cmg_graph::weights::{assign_weights, WeightScheme};

    fn explicit(rows: usize, cols: usize, pr: u32, pc: u32, seed: Option<u64>) -> Vec<DistGraph> {
        let g = grid2d(rows, cols);
        let g = match seed {
            Some(s) => assign_weights(&g, WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, s),
            None => g,
        };
        DistGraph::build_all(&g, &grid2d_partition(rows, cols, pr, pc))
    }

    #[test]
    fn matches_explicit_construction_unweighted() {
        for (rows, cols, pr, pc) in [(8usize, 8usize, 2u32, 2u32), (9, 7, 3, 2), (5, 5, 1, 1)] {
            let implicit = grid2d_dist(rows, cols, pr, pc, None);
            let expected = explicit(rows, cols, pr, pc, None);
            assert_eq!(implicit, expected, "{rows}x{cols} on {pr}x{pc}");
        }
    }

    #[test]
    fn matches_explicit_construction_weighted() {
        let implicit = grid2d_dist(10, 12, 2, 3, Some(42));
        let expected = explicit(10, 12, 2, 3, Some(42));
        assert_eq!(implicit, expected);
    }

    #[test]
    fn uneven_blocks_match() {
        // 7 rows over 3 block-rows: blocks of 3, 3, 1.
        let implicit = grid2d_dist(7, 7, 3, 3, Some(1));
        let expected = explicit(7, 7, 3, 3, Some(1));
        assert_eq!(implicit, expected);
    }

    #[test]
    fn single_rank_has_everything() {
        let parts = grid2d_dist(6, 6, 1, 1, None);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].n_local, 36);
        assert_eq!(parts[0].n_ghost(), 0);
    }

    #[test]
    fn rank_local_build_matches_batch() {
        let all = grid2d_dist(12, 12, 2, 2, Some(7));
        for rank in 0..4u32 {
            let one = build_rank(12, 12, 2, 2, rank, Some(7));
            assert_eq!(one, all[rank as usize]);
        }
    }
}
