//! Multilevel recursive-bisection partitioner — the METIS-like tool of the
//! workspace (Karypis–Kumar scheme: heavy-edge-matching coarsening, greedy
//! graph-growing initial bisection, FM-style boundary refinement).
//!
//! Interestingly, the coarsening phase is itself an application of the
//! paper's subject matter: METIS's heavy-edge matching is one of the
//! motivating uses of matching the introduction lists ("the coarsening
//! phase of multilevel algorithms for graph partitioning").

use crate::Partition;
use cmg_graph::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Allowed deviation of a side's weight from its target, as a fraction of
/// total weight. Must stay tight: recursive bisection compounds the
/// per-level tolerance (k = 16 means four levels, so worst-case part
/// imbalance is roughly `(1 + 2·tol)^4`).
const BALANCE_TOL: f64 = 0.015;
/// Stop coarsening below this many vertices.
const COARSE_TARGET: usize = 64;
/// Refinement passes per level.
const REFINE_PASSES: usize = 4;
/// Initial-bisection attempts (best cut wins).
const INIT_ATTEMPTS: u64 = 8;

/// Internal working graph: structural (unit) edge weights that accumulate
/// during contraction, plus vertex weights.
#[derive(Clone)]
struct WorkGraph {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    ew: Vec<u64>,
    vw: Vec<u64>,
}

impl WorkGraph {
    fn n(&self) -> usize {
        self.vw.len()
    }

    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0);
        let mut adj = Vec::with_capacity(2 * g.num_edges());
        for v in 0..n as VertexId {
            adj.extend_from_slice(g.neighbors(v));
            xadj.push(adj.len());
        }
        WorkGraph {
            ew: vec![1; adj.len()],
            adj,
            xadj,
            vw: vec![1; n],
        }
    }

    fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        (lo..hi).map(move |i| (self.adj[i], self.ew[i]))
    }

    fn total_vw(&self) -> u64 {
        self.vw.iter().sum()
    }
}

/// Partitions `g` into `k` parts by multilevel recursive bisection.
///
/// Edge weights of `g` are ignored: the partitioner minimizes the *edge
/// cut* of the structure (the quantity that determines communication
/// volume), not the matching objective.
pub fn multilevel_partition(g: &CsrGraph, k: u32, seed: u64) -> Partition {
    assert!(k > 0);
    let n = g.num_vertices();
    let mut assignment = vec![0u32; n];
    if k > 1 && n > 0 {
        let wg = WorkGraph::from_csr(g);
        let ids: Vec<u32> = (0..n as u32).collect();
        split(wg, ids, k, 0, &mut assignment, seed);
    }
    Partition::new(assignment, k)
}

/// Recursively bisects `wg` (whose vertices map to original ids via `ids`)
/// into `k` parts numbered from `first_part`.
fn split(wg: WorkGraph, ids: Vec<u32>, k: u32, first_part: u32, assignment: &mut [u32], seed: u64) {
    if k == 1 {
        for &orig in &ids {
            assignment[orig as usize] = first_part;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    // Side 0 receives k0/k of the weight.
    let frac = k0 as f64 / k as f64;
    let side = bisect(&wg, frac, seed);

    // Extract the two induced subgraphs.
    let (sub0, ids0) = extract(&wg, &ids, &side, false);
    let (sub1, ids1) = extract(&wg, &ids, &side, true);
    split(sub0, ids0, k0, first_part, assignment, seed.wrapping_add(1));
    split(
        sub1,
        ids1,
        k1,
        first_part + k0,
        assignment,
        seed.wrapping_add(2),
    );
}

/// Induced subgraph of the vertices on `which` side.
fn extract(wg: &WorkGraph, ids: &[u32], side: &[bool], which: bool) -> (WorkGraph, Vec<u32>) {
    let mut remap = vec![u32::MAX; wg.n()];
    let mut sub_ids = Vec::new();
    for v in 0..wg.n() {
        if side[v] == which {
            remap[v] = sub_ids.len() as u32;
            sub_ids.push(ids[v]);
        }
    }
    let mut xadj = Vec::with_capacity(sub_ids.len() + 1);
    xadj.push(0usize);
    let mut adj = Vec::new();
    let mut ew = Vec::new();
    let mut vw = Vec::with_capacity(sub_ids.len());
    for v in 0..wg.n() {
        if side[v] != which {
            continue;
        }
        for (u, w) in wg.neighbors(v as u32) {
            if side[u as usize] == which {
                adj.push(remap[u as usize]);
                ew.push(w);
            }
        }
        xadj.push(adj.len());
        vw.push(wg.vw[v]);
    }
    (WorkGraph { xadj, adj, ew, vw }, sub_ids)
}

/// Multilevel bisection of `wg`: side 0 targets `frac` of the weight.
fn bisect(wg: &WorkGraph, frac: f64, seed: u64) -> Vec<bool> {
    // Coarsen.
    let mut levels: Vec<(WorkGraph, Vec<u32>)> = Vec::new();
    let mut cur = wg.clone();
    while cur.n() > COARSE_TARGET {
        let (coarse, map) = coarsen(&cur, seed ^ levels.len() as u64);
        if coarse.n() as f64 > 0.95 * cur.n() as f64 {
            break; // contraction stalled (e.g. star graphs)
        }
        levels.push((std::mem::replace(&mut cur, coarse), map));
    }

    // Initial bisection on the coarsest graph: best of a few seeds.
    let mut side = grow_bisection(&cur, frac, seed);
    refine(&cur, &mut side, frac);
    let mut best_cut = cut_weight(&cur, &side);
    for attempt in 1..INIT_ATTEMPTS {
        let mut cand = grow_bisection(&cur, frac, seed.wrapping_add(attempt));
        refine(&cur, &mut cand, frac);
        let cut = cut_weight(&cur, &cand);
        if cut < best_cut {
            best_cut = cut;
            side = cand;
        }
    }

    // Uncoarsen: project and refine at each level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_side: Vec<bool> = map.iter().map(|&c| side[c as usize]).collect();
        refine(&fine, &mut fine_side, frac);
        side = fine_side;
    }
    side
}

/// One heavy-edge-matching contraction step. Returns the coarse graph and
/// the fine→coarse vertex map.
fn coarsen(wg: &WorkGraph, seed: u64) -> (WorkGraph, Vec<u32>) {
    let n = wg.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);

    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for (u, w) in wg.neighbors(v) {
            if u != v && mate[u as usize] == u32::MAX {
                match best {
                    Some((bw, bu)) if (w, std::cmp::Reverse(u)) <= (bw, std::cmp::Reverse(bu)) => {}
                    _ => best = Some((w, u)),
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }

    // Coarse ids in order of the smaller endpoint.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] == u32::MAX {
            map[v as usize] = next;
            let m = mate[v as usize];
            if m != v {
                map[m as usize] = next;
            }
            next += 1;
        }
    }
    let coarse_n = next as usize;

    // Aggregate coarse edges by triple sort-merge.
    let mut triples: Vec<(u32, u32, u64)> = Vec::with_capacity(wg.adj.len());
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in wg.neighbors(v) {
            let cu = map[u as usize];
            if cu != cv {
                triples.push((cv, cu, w));
            }
        }
    }
    triples.sort_unstable();
    let mut xadj = vec![0usize; coarse_n + 1];
    let mut adj = Vec::new();
    let mut ew = Vec::new();
    let mut prev: Option<(u32, u32)> = None;
    for (cv, cu, w) in triples {
        if prev == Some((cv, cu)) {
            // Parallel coarse edge: accumulate its weight.
            if let Some(last) = ew.last_mut() {
                *last += w;
            }
        } else {
            adj.push(cu);
            ew.push(w);
            xadj[cv as usize + 1] = adj.len();
            prev = Some((cv, cu));
        }
    }
    // Make xadj cumulative (rows with no edges inherit the previous end).
    for i in 1..=coarse_n {
        if xadj[i] == 0 {
            xadj[i] = xadj[i - 1];
        }
    }
    let mut vw = vec![0u64; coarse_n];
    for v in 0..n {
        vw[map[v] as usize] += wg.vw[v];
    }
    (WorkGraph { xadj, adj, ew, vw }, map)
}

/// Greedy graph-growing bisection: BFS from a random start until side 0
/// holds `frac` of the total weight.
fn grow_bisection(wg: &WorkGraph, frac: f64, seed: u64) -> Vec<bool> {
    let n = wg.n();
    let total = wg.total_vw();
    let target0 = (frac * total as f64).round() as u64;
    let mut side = vec![true; n]; // true = side 1; we grow side 0
    if n == 0 {
        return side;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut in0: u64 = 0;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.shuffle(&mut rng);
    let mut start_iter = starts.into_iter();

    while in0 < target0 {
        if queue.is_empty() {
            // New component (or first start).
            match start_iter.find(|&s| !visited[s as usize]) {
                Some(s) => {
                    visited[s as usize] = true;
                    queue.push_back(s);
                }
                None => break,
            }
        }
        let Some(v) = queue.pop_front() else { break };
        side[v as usize] = false;
        in0 += wg.vw[v as usize];
        for (u, _) in wg.neighbors(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    side
}

/// Total weight of cut edges.
fn cut_weight(wg: &WorkGraph, side: &[bool]) -> u64 {
    let mut cut = 0;
    for v in 0..wg.n() as u32 {
        for (u, w) in wg.neighbors(v) {
            if u > v && side[u as usize] != side[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Greedy FM-style refinement: positive-gain passes, an explicit
/// rebalance, then more passes to repair any cut damage the rebalance
/// introduced.
fn refine(wg: &WorkGraph, side: &mut [bool], frac: f64) {
    refine_passes(wg, side, frac);
    rebalance(wg, side, frac);
    refine_passes(wg, side, frac);
}

/// Repeatedly flips positive-gain boundary vertices while staying within
/// the balance tolerance.
fn refine_passes(wg: &WorkGraph, side: &mut [bool], frac: f64) {
    let total = wg.total_vw() as f64;
    let target0 = frac * total;
    let tol = BALANCE_TOL * total;
    let mut w0: f64 = (0..wg.n())
        .filter(|&v| !side[v])
        .map(|v| wg.vw[v] as f64)
        .sum();

    for _ in 0..REFINE_PASSES {
        let mut moved = false;
        for v in 0..wg.n() {
            let mut internal = 0i64;
            let mut external = 0i64;
            for (u, w) in wg.neighbors(v as u32) {
                if side[u as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            let gain = external - internal;
            if gain <= 0 {
                continue;
            }
            // Weight of side 0 after flipping v.
            let delta = wg.vw[v] as f64;
            let new_w0 = if side[v] { w0 + delta } else { w0 - delta };
            let old_dev = (w0 - target0).abs();
            let new_dev = (new_w0 - target0).abs();
            if new_dev <= tol.max(old_dev) {
                side[v] = !side[v];
                w0 = new_w0;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Restores the balance constraint. Greedy refinement only flips
/// positive-gain vertices, so it cannot repair an unbalanced start (a
/// graph-growing overshoot on a coarse graph, or drift introduced by
/// projecting a coarse bisection down a level). While the deviation
/// exceeds the tolerance, this moves the cheapest boundary-gain vertex
/// from the heavy side to the light side; each move strictly shrinks
/// the deviation, so the loop terminates.
fn rebalance(wg: &WorkGraph, side: &mut [bool], frac: f64) {
    let total = wg.total_vw() as f64;
    let target0 = frac * total;
    let tol = BALANCE_TOL * total;
    let mut w0: f64 = (0..wg.n())
        .filter(|&v| !side[v])
        .map(|v| wg.vw[v] as f64)
        .sum();

    loop {
        let dev = w0 - target0;
        if dev.abs() <= tol {
            break;
        }
        // The heavy side: side 0 if dev > 0 (side[v] == false), else side 1.
        let heavy = dev < 0.0;
        let mut best: Option<(i64, usize)> = None;
        for v in 0..wg.n() {
            if side[v] != heavy {
                continue;
            }
            let delta = wg.vw[v] as f64;
            let new_dev = if heavy { dev + delta } else { dev - delta };
            if new_dev.abs() >= dev.abs() {
                continue; // the move must strictly improve balance
            }
            let mut gain = 0i64;
            for (u, w) in wg.neighbors(v as u32) {
                if side[u as usize] == side[v] {
                    gain -= w as i64;
                } else {
                    gain += w as i64;
                }
            }
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, v));
            }
        }
        match best {
            Some((_, v)) => {
                let delta = wg.vw[v] as f64;
                if side[v] {
                    w0 += delta;
                } else {
                    w0 -= delta;
                }
                side[v] = !side[v];
            }
            None => break, // no single vertex can improve balance further
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::random_partition;
    use cmg_graph::generators::{circuit_like, grid2d, star};

    #[test]
    fn bisection_of_grid_is_near_optimal() {
        let g = grid2d(16, 16);
        let p = multilevel_partition(&g, 2, 42);
        let q = p.quality(&g);
        assert!(q.imbalance <= 1.05, "imbalance {}", q.imbalance);
        // Optimal bisection cut of a 16x16 grid is 16; allow 2x slack.
        assert!(q.edge_cut <= 32, "cut {}", q.edge_cut);
    }

    #[test]
    fn kway_partition_is_balanced_and_low_cut() {
        let g = grid2d(24, 24);
        let p = multilevel_partition(&g, 8, 1);
        let q = p.quality(&g);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 576);
        assert!(q.imbalance <= 1.15, "imbalance {}", q.imbalance);
        let rnd = random_partition(576, 8, 1).quality(&g);
        assert!(
            q.edge_cut * 4 < rnd.edge_cut,
            "ml cut {} vs random cut {}",
            q.edge_cut,
            rnd.edge_cut
        );
    }

    #[test]
    fn circuit_graph_cut_lands_in_low_regime() {
        let g = circuit_like(4_000, 2);
        let p = multilevel_partition(&g, 16, 3);
        let q = p.quality(&g);
        assert!(q.cut_fraction < 0.15, "cut fraction {}", q.cut_fraction);
        assert!(q.imbalance < 1.2, "imbalance {}", q.imbalance);
    }

    #[test]
    fn non_power_of_two_parts() {
        let g = grid2d(15, 15);
        let p = multilevel_partition(&g, 5, 9);
        assert_eq!(p.num_parts(), 5);
        let sizes = p.part_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty part: {sizes:?}");
        let q = p.quality(&g);
        assert!(q.imbalance <= 1.25, "imbalance {}", q.imbalance);
    }

    #[test]
    fn star_graph_does_not_stall() {
        let g = star(500);
        let p = multilevel_partition(&g, 4, 5);
        assert_eq!(p.num_vertices(), 500);
        assert!(p.quality(&g).imbalance < 1.5);
    }

    #[test]
    fn single_part_is_trivial() {
        let g = grid2d(5, 5);
        let p = multilevel_partition(&g, 1, 0);
        assert!(p.assignment().iter().all(|&a| a == 0));
    }

    #[test]
    fn empty_graph() {
        let g = cmg_graph::CsrGraph::empty(0);
        let p = multilevel_partition(&g, 4, 0);
        assert_eq!(p.num_vertices(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = circuit_like(1_000, 7);
        let a = multilevel_partition(&g, 8, 11);
        let b = multilevel_partition(&g, 8, 11);
        assert_eq!(a, b);
    }
}
