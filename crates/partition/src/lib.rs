//! # cmg-partition
//!
//! Graph partitioning and distributed-graph construction: the stand-in for
//! METIS / ParMETIS in the paper's experimental pipeline (§5.1).
//!
//! The paper distributes its inputs two ways: a **uniform 2-D distribution**
//! for the grid graphs, and **METIS / ParMETIS** partitions for the circuit
//! graphs, deliberately spanning a low-cut (≈6 %) and a high-cut (≈40 %)
//! regime. This crate supplies:
//!
//! * [`simple`]: block, uniform 2-D grid, random, hash, and BFS-grown
//!   partitions (the cheap/low-quality end of the spectrum);
//! * [`multilevel`]: a multilevel recursive-bisection partitioner
//!   (heavy-edge-matching coarsening → greedy graph growing → FM boundary
//!   refinement), the METIS-like high-quality tool;
//! * [`dist`]: construction of per-rank local graphs with ghost vertices,
//!   exactly the representation §3.3 describes ("cross edges are
//!   represented using ghost vertices").

pub mod dist;
pub mod geometric;
pub mod grid_dist;
pub mod halo;
pub mod multilevel;
pub mod partition;
pub mod simple;

pub use dist::DistGraph;
pub use geometric::{morton_grid_partition, morton_partition};
pub use grid_dist::grid2d_dist;
pub use halo::{ghost_neighbor_owners, weight_sorted_csr, HaloView};
pub use multilevel::multilevel_partition;
pub use partition::{Partition, PartitionQuality};
