//! Cheap partitioners: block, uniform 2-D grid, random, hash, BFS-grown.
//!
//! The uniform 2-D distribution is what the paper uses for its grid-graph
//! experiments ("the grid graphs were generated in parallel, distributed in
//! a two-dimensional fashion among the available processors"); random and
//! hash partitions provide the deliberately-poor baseline, and BFS-grown
//! blocks sit in between — the "ParMETIS-like" moderate-quality regime of
//! Figure 5.4.

use crate::Partition;
use cmg_graph::{traversal, CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Contiguous 1-D block partition: vertex ids split into `k` equal ranges.
/// Near-optimal for graphs whose ids follow a space-filling order.
pub fn block_partition(n: usize, k: u32) -> Partition {
    assert!(k > 0);
    let per = n.div_ceil(k as usize).max(1);
    let assignment = (0..n).map(|v| ((v / per) as u32).min(k - 1)).collect();
    Partition::new(assignment, k)
}

/// Uniform 2-D distribution of a `rows × cols` grid graph (row-major ids)
/// over a `pr × pc` processor grid: each rank owns a contiguous subgrid.
///
/// This reproduces the paper's grid experiments: an `8000 × 8000` grid on a
/// `32 × 32` processor grid gives each rank a `250 × 250` subgrid.
///
/// # Panics
/// Panics if `pr` or `pc` is zero.
pub fn grid2d_partition(rows: usize, cols: usize, pr: u32, pc: u32) -> Partition {
    assert!(pr > 0 && pc > 0);
    let block_r = rows.div_ceil(pr as usize).max(1);
    let block_c = cols.div_ceil(pc as usize).max(1);
    let mut assignment = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        let bi = ((i / block_r) as u32).min(pr - 1);
        for j in 0..cols {
            let bj = ((j / block_c) as u32).min(pc - 1);
            assignment.push(bi * pc + bj);
        }
    }
    Partition::new(assignment, pr * pc)
}

/// Splits `p` into the most-square processor grid `pr × pc` (`pr ≤ pc`).
pub fn square_processor_grid(p: u32) -> (u32, u32) {
    let mut pr = (p as f64).sqrt() as u32;
    while pr > 1 && !p.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), p / pr.max(1))
}

/// Uniform random assignment (worst-case cut: ~`(1 − 1/k)` of all edges).
pub fn random_partition(n: usize, k: u32, seed: u64) -> Partition {
    let mut rng = SmallRng::seed_from_u64(seed);
    let assignment = (0..n).map(|_| rng.random_range(0..k)).collect();
    Partition::new(assignment, k)
}

/// Deterministic hash assignment (random-like cut, no RNG state).
pub fn hash_partition(n: usize, k: u32, seed: u64) -> Partition {
    let assignment = (0..n)
        .map(|v| (cmg_graph::util::splitmix64(v as u64 ^ seed) % k as u64) as u32)
        .collect();
    Partition::new(assignment, k)
}

/// BFS-grown blocks: runs a BFS from a pseudo-peripheral vertex and chops
/// the visit order into `k` equal blocks. Produces locality-respecting but
/// unrefined parts — a moderate edge cut, our "ParMETIS-like" stand-in for
/// the high-cut regime of Figure 5.4 when combined with many parts.
pub fn bfs_partition(g: &CsrGraph, k: u32) -> Partition {
    let n = g.num_vertices();
    if n == 0 {
        return Partition::new(Vec::new(), k);
    }
    let mut assignment = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Cover all components.
    for s in 0..n as VertexId {
        if visited[s as usize] {
            continue;
        }
        let seed = traversal::pseudo_peripheral(g, s);
        let comp = if visited[seed as usize] {
            traversal::bfs_order(g, s)
        } else {
            traversal::bfs_order(g, seed)
        };
        for v in comp {
            if !visited[v as usize] {
                visited[v as usize] = true;
                order.push(v);
            }
        }
    }
    let per = n.div_ceil(k as usize).max(1);
    for (i, v) in order.into_iter().enumerate() {
        assignment[v as usize] = ((i / per) as u32).min(k - 1);
    }
    Partition::new(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::{circuit_like, grid2d};

    #[test]
    fn block_partition_balanced() {
        let p = block_partition(10, 3);
        assert_eq!(p.part_sizes(), vec![4, 4, 2]);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(9), 2);
    }

    #[test]
    fn grid2d_partition_exact_blocks() {
        // 4x4 grid on 2x2 ranks: each rank owns a 2x2 subgrid.
        let p = grid2d_partition(4, 4, 2, 2);
        assert_eq!(p.num_parts(), 4);
        assert_eq!(p.part_sizes(), vec![4, 4, 4, 4]);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 1);
        assert_eq!(p.owner(12), 2);
        assert_eq!(p.owner(15), 3);
        // Cut of the 4x4 grid into 2x2 blocks: 8 edges.
        let q = p.quality(&grid2d(4, 4));
        assert_eq!(q.edge_cut, 8);
    }

    #[test]
    fn square_grid_factors() {
        assert_eq!(square_processor_grid(16), (4, 4));
        assert_eq!(square_processor_grid(8), (2, 4));
        assert_eq!(square_processor_grid(7), (1, 7));
        assert_eq!(square_processor_grid(1), (1, 1));
    }

    #[test]
    fn random_and_hash_partitions_are_deterministic() {
        assert_eq!(random_partition(100, 4, 7), random_partition(100, 4, 7));
        assert_eq!(hash_partition(100, 4, 7), hash_partition(100, 4, 7));
        assert_ne!(
            hash_partition(100, 4, 7).assignment(),
            hash_partition(100, 4, 8).assignment()
        );
    }

    #[test]
    fn bfs_partition_beats_random_on_grid() {
        let g = grid2d(20, 20);
        let bfs = bfs_partition(&g, 4).quality(&g);
        let rnd = random_partition(400, 4, 1).quality(&g);
        assert!(
            bfs.edge_cut < rnd.edge_cut / 2,
            "bfs {} rnd {}",
            bfs.edge_cut,
            rnd.edge_cut
        );
        assert!(bfs.imbalance <= 1.01);
    }

    #[test]
    fn bfs_partition_handles_disconnected() {
        let mut b = cmg_graph::GraphBuilder::new(6);
        b.add_edge_unweighted(0, 1);
        b.add_edge_unweighted(4, 5);
        let g = b.build();
        let p = bfs_partition(&g, 2);
        assert_eq!(p.num_vertices(), 6);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 6);
    }

    #[test]
    fn partitions_on_circuit_graph_cover_cut_spectrum() {
        let g = circuit_like(2_000, 1);
        let n = g.num_vertices();
        let good = bfs_partition(&g, 16).quality(&g);
        let bad = hash_partition(n, 16, 1).quality(&g);
        assert!(good.cut_fraction < bad.cut_fraction);
        assert!(bad.cut_fraction > 0.5);
    }
}
