//! Geometry-driven partitioning: Morton (Z-order) space-filling-curve
//! blocks for vertices with 2-D coordinates.
//!
//! Space-filling-curve partitions are the classic cheap alternative to
//! multilevel tools for mesh-like inputs (the paper's grid distribution is
//! itself geometric): sort vertices by their interleaved-bit Morton code
//! and cut the order into equal blocks. Quality sits between 1-D blocks
//! and the multilevel partitioner at a fraction of the cost.

use crate::Partition;
use cmg_graph::VertexId;

/// Interleaves the low 16 bits of `x` and `y` into a 32-bit Morton code.
#[inline]
pub fn morton2d(x: u16, y: u16) -> u32 {
    fn spread(v: u16) -> u32 {
        let mut v = v as u32;
        v = (v | (v << 8)) & 0x00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// Partitions vertices with coordinates into `k` equal blocks of the
/// Morton order.
///
/// # Panics
/// Panics if a coordinate exceeds `u16::MAX` or `k == 0`.
pub fn morton_partition(coords: &[(u32, u32)], k: u32) -> Partition {
    assert!(k > 0);
    let n = coords.len();
    let mut order: Vec<(u32, VertexId)> = coords
        .iter()
        .enumerate()
        .map(|(v, &(x, y))| {
            assert!(
                x <= u16::MAX as u32 && y <= u16::MAX as u32,
                "coordinate too large"
            );
            (morton2d(x as u16, y as u16), v as VertexId)
        })
        .collect();
    order.sort_unstable();
    let per = n.div_ceil(k as usize).max(1);
    let mut assignment = vec![0u32; n];
    for (i, &(_, v)) in order.iter().enumerate() {
        assignment[v as usize] = ((i / per) as u32).min(k - 1);
    }
    Partition::new(assignment, k)
}

/// Morton partition of a `rows × cols` grid graph (row-major vertex ids).
pub fn morton_grid_partition(rows: usize, cols: usize, k: u32) -> Partition {
    let coords: Vec<(u32, u32)> = (0..rows * cols)
        .map(|v| ((v % cols) as u32, (v / cols) as u32))
        .collect();
    morton_partition(&coords, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{block_partition, random_partition};
    use cmg_graph::generators::grid2d;

    #[test]
    fn morton_codes_order_locally() {
        assert_eq!(morton2d(0, 0), 0);
        assert_eq!(morton2d(1, 0), 1);
        assert_eq!(morton2d(0, 1), 2);
        assert_eq!(morton2d(1, 1), 3);
        assert_eq!(morton2d(2, 0), 4);
        assert!(morton2d(255, 255) < morton2d(256, 256));
    }

    #[test]
    fn morton_partition_is_balanced() {
        let g = grid2d(16, 16);
        let p = morton_grid_partition(16, 16, 8);
        assert_eq!(p.num_parts(), 8);
        let q = p.quality(&g);
        assert!(q.imbalance <= 1.01, "imbalance {}", q.imbalance);
    }

    #[test]
    fn morton_beats_random_and_is_competitive_with_blocks() {
        let g = grid2d(32, 32);
        let morton = morton_grid_partition(32, 32, 16).quality(&g);
        let random = random_partition(1024, 16, 1).quality(&g);
        let blocks = block_partition(1024, 16).quality(&g);
        assert!(morton.edge_cut * 3 < random.edge_cut);
        // Morton blocks are square-ish: cut within 2x of 1-D strips at
        // this size, much better at high k (strips degenerate).
        assert!(morton.edge_cut <= 2 * blocks.edge_cut);
        let many_morton = morton_grid_partition(32, 32, 64).quality(&g);
        let many_blocks = block_partition(1024, 64).quality(&g);
        assert!(many_morton.edge_cut < many_blocks.edge_cut);
    }

    #[test]
    fn power_of_two_square_equals_uniform_blocks() {
        // On a 2^a × 2^a grid with k = 4^b parts, Morton blocks are exactly
        // the uniform 2-D sub-squares.
        let p = morton_grid_partition(8, 8, 4);
        let u = crate::simple::grid2d_partition(8, 8, 2, 2);
        // Same cut (part numbering may differ).
        let g = grid2d(8, 8);
        assert_eq!(p.quality(&g).edge_cut, u.quality(&g).edge_cut);
    }

    #[test]
    #[should_panic(expected = "coordinate too large")]
    fn oversized_coordinates_rejected() {
        morton_partition(&[(70_000, 0)], 2);
    }
}
