//! Halo views: precomputed owned/ghost indexing over a [`DistGraph`].
//!
//! Every distributed algorithm in the workspace starts from the same
//! derived structures — which owned vertices are interior vs boundary,
//! and which owned vertices touch each ghost (the reverse
//! cross-adjacency needed to propagate "this ghost changed" to the
//! owned vertices that care). Each rank program used to rebuild these
//! privately; [`HaloView`] computes them once, totally (no partial
//! indexing), and the algorithms share the result.

use crate::dist::{DistGraph, Rank};
use cmg_graph::{VertexId, Weight};

/// Precomputed halo structure of one rank's [`DistGraph`]: boundary /
/// interior vertex lists and the ghost reverse cross-adjacency CSR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HaloView {
    /// Number of owned vertices (mirrors `DistGraph::n_local`).
    pub n_local: usize,
    /// Number of ghost vertices.
    pub n_ghost: usize,
    /// Owned interior vertices (no ghost neighbor), ascending local index.
    pub interior: Vec<u32>,
    /// Owned boundary vertices (≥ 1 ghost neighbor), ascending local index.
    pub boundary: Vec<u32>,
    /// CSR offsets over ghosts (length `n_ghost + 1`) into
    /// [`HaloView::ghost_adj`].
    pub ghost_adj_x: Vec<usize>,
    /// Owned neighbors of each ghost (reverse cross-adjacency), grouped
    /// by ghost in ghost-index order.
    pub ghost_adj: Vec<u32>,
}

impl HaloView {
    /// Computes the halo view of `dg`. Total: every offset is built by a
    /// running sum, so empty ranks and ghost-free ranks need no special
    /// cases.
    pub fn build(dg: &DistGraph) -> Self {
        let n_local = dg.n_local;
        let n_ghost = dg.n_ghost();

        let mut interior = Vec::with_capacity(n_local - dg.num_boundary());
        let mut boundary = Vec::with_capacity(dg.num_boundary());
        for (v, &b) in dg.is_boundary.iter().enumerate() {
            if b {
                boundary.push(v as u32);
            } else {
                interior.push(v as u32);
            }
        }

        // Reverse adjacency for ghosts: count cross-edge endpoints per
        // ghost, prefix-sum into offsets, then fill with a cursor pass.
        let mut counts = vec![0usize; n_ghost];
        for &u in &dg.adj {
            if u as usize >= n_local {
                counts[u as usize - n_local] += 1;
            }
        }
        let mut ghost_adj_x = Vec::with_capacity(n_ghost + 1);
        let mut running = 0usize;
        ghost_adj_x.push(running);
        for &c in &counts {
            running += c;
            ghost_adj_x.push(running);
        }
        let mut ghost_adj = vec![0u32; running];
        let mut cursor = ghost_adj_x.clone();
        for v in 0..n_local as u32 {
            for &u in dg.neighbors(v) {
                if u as usize >= n_local {
                    let gi = u as usize - n_local;
                    ghost_adj[cursor[gi]] = v;
                    cursor[gi] += 1;
                }
            }
        }

        HaloView {
            n_local,
            n_ghost,
            interior,
            boundary,
            ghost_adj_x,
            ghost_adj,
        }
    }

    /// Owned neighbors of the ghost with ghost index `gi` (i.e. local
    /// index `n_local + gi`), in owned scan order.
    #[inline]
    pub fn owned_neighbors_of_ghost(&self, gi: usize) -> &[u32] {
        &self.ghost_adj[self.ghost_adj_x[gi]..self.ghost_adj_x[gi + 1]]
    }

    /// Owned neighbors of local index `v` if it is a ghost, else `None`.
    #[inline]
    pub fn owned_neighbors_of(&self, v: u32) -> Option<&[u32]> {
        (v as usize)
            .checked_sub(self.n_local)
            .map(|gi| self.owned_neighbors_of_ghost(gi))
    }

    /// Splits a *global* dirty predicate into this rank's owned dirty
    /// local indices, interior first then boundary (each ascending).
    /// The warm-start plumbing: a serving layer computes one global
    /// dirty set, and every rank derives its own repair worklist from
    /// it — interior-first matches the cold-start local order, and
    /// boundary-last keeps the speculative window (where cross-rank
    /// conflicts can arise) as late as possible.
    pub fn dirty_split(&self, dg: &DistGraph, dirty: impl Fn(VertexId) -> bool) -> Vec<u32> {
        self.interior
            .iter()
            .chain(self.boundary.iter())
            .copied()
            .filter(|&v| dirty(dg.global_ids[v as usize]))
            .collect()
    }
}

/// Builds a weight-sorted adjacency CSR over `dg`'s owned vertices:
/// within each row, neighbors ordered by descending weight, ties broken
/// by ascending *global* id so every rank orders shared edges
/// identically (the paper's smallest-label tie-break). Returns
/// `(sxadj, sadj, sweights)` with `sweights[i]` the weight of the edge
/// to `sadj[i]` (1.0 throughout if the graph is unweighted).
pub fn weight_sorted_csr(dg: &DistGraph) -> (Vec<usize>, Vec<u32>, Vec<Weight>) {
    let n_local = dg.n_local;
    let mut sxadj = Vec::with_capacity(n_local + 1);
    sxadj.push(0usize);
    let mut sadj = Vec::with_capacity(dg.adj.len());
    let mut sweights = Vec::with_capacity(dg.adj.len());
    let mut row: Vec<(Weight, VertexId, u32)> = Vec::new();
    for v in 0..n_local as u32 {
        row.clear();
        row.extend(
            dg.neighbors_weighted(v)
                .map(|(u, w)| (w, dg.global_ids[u as usize], u)),
        );
        row.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        sadj.extend(row.iter().map(|&(_, _, u)| u));
        sweights.extend(row.iter().map(|&(w, _, _)| w));
        sxadj.push(sadj.len());
    }
    (sxadj, sadj, sweights)
}

/// Iterates the owner ranks of the ghost neighbors of owned vertex `v`
/// (with repeats — callers that need each owner once dedup via
/// `NeighborExchange`'s stamps). The canonical input to a per-vertex
/// boundary publish.
pub fn ghost_neighbor_owners<'a>(dg: &'a DistGraph, v: u32) -> impl Iterator<Item = Rank> + 'a {
    dg.neighbors(v)
        .iter()
        .filter(|&&u| dg.is_ghost(u))
        .map(|&u| dg.owner(u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{block_partition, grid2d_partition};
    use crate::Partition;
    use cmg_graph::generators::grid2d;
    use cmg_graph::weights::{assign_weights, WeightScheme};

    #[test]
    fn interior_and_boundary_partition_owned() {
        let g = grid2d(6, 6);
        let p = grid2d_partition(6, 6, 2, 2);
        for dg in DistGraph::build_all(&g, &p) {
            let halo = HaloView::build(&dg);
            assert_eq!(halo.interior.len() + halo.boundary.len(), dg.n_local);
            assert_eq!(halo.boundary.len(), dg.num_boundary());
            for &v in &halo.boundary {
                assert!(dg.is_boundary[v as usize]);
            }
            for &v in &halo.interior {
                assert!(!dg.is_boundary[v as usize]);
            }
            // Both lists ascend (stable split of 0..n_local).
            assert!(halo.interior.windows(2).all(|w| w[0] < w[1]));
            assert!(halo.boundary.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ghost_reverse_adjacency_inverts_cross_edges() {
        let g = grid2d(8, 8);
        let p = block_partition(64, 4);
        for dg in DistGraph::build_all(&g, &p) {
            let halo = HaloView::build(&dg);
            assert_eq!(halo.n_ghost, dg.n_ghost());
            let mut cross_from_fwd = 0usize;
            for v in 0..dg.n_local as u32 {
                for &u in dg.neighbors(v) {
                    if dg.is_ghost(u) {
                        cross_from_fwd += 1;
                        let gi = u as usize - dg.n_local;
                        assert!(
                            halo.owned_neighbors_of_ghost(gi).contains(&v),
                            "cross edge ({v},{u}) missing from reverse CSR"
                        );
                    }
                }
            }
            assert_eq!(halo.ghost_adj.len(), cross_from_fwd);
            for v in dg.n_local as u32..dg.n_total() as u32 {
                assert!(halo.owned_neighbors_of(v).is_some());
            }
            assert_eq!(halo.owned_neighbors_of(0), None);
        }
    }

    #[test]
    fn empty_and_ghost_free_ranks_are_total() {
        // 3 vertices over 4 ranks: rank 3 owns nothing.
        let g = grid2d(1, 3);
        let p = block_partition(3, 4);
        let parts = DistGraph::build_all(&g, &p);
        let halo = HaloView::build(&parts[3]);
        assert_eq!(halo.n_local, 0);
        assert_eq!(halo.n_ghost, 0);
        assert!(halo.ghost_adj.is_empty());
        assert_eq!(halo.ghost_adj_x, vec![0]);
        // Single rank: ghosts absent but owned vertices present.
        let p1 = Partition::single(3);
        let halo = HaloView::build(&DistGraph::build_all(&g, &p1)[0]);
        assert_eq!(halo.interior.len(), 3);
        assert!(halo.boundary.is_empty());
    }

    #[test]
    fn weight_sorted_rows_descend_with_global_id_ties() {
        let g = assign_weights(&grid2d(5, 5), WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 3);
        let p = block_partition(25, 3);
        for dg in DistGraph::build_all(&g, &p) {
            let (sxadj, sadj, sweights) = weight_sorted_csr(&dg);
            assert_eq!(sxadj.len(), dg.n_local + 1);
            assert_eq!(sadj.len(), dg.adj.len());
            assert_eq!(sweights.len(), dg.adj.len());
            for v in 0..dg.n_local {
                let row = &sadj[sxadj[v]..sxadj[v + 1]];
                let ws = &sweights[sxadj[v]..sxadj[v + 1]];
                // Same multiset as the unsorted row.
                let mut a: Vec<u32> = row.to_vec();
                let mut b: Vec<u32> = dg.neighbors(v as u32).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
                for i in 1..row.len() {
                    let key = |j: usize| (-ws[j], dg.global_ids[row[j] as usize]);
                    assert!(key(i - 1) <= key(i), "row {v} out of order at {i}");
                }
                // Weights parallel to the sorted row.
                for (i, &u) in row.iter().enumerate() {
                    let w = dg
                        .neighbors_weighted(v as u32)
                        .find(|&(x, _)| x == u)
                        .map(|(_, w)| w);
                    assert_eq!(w, Some(ws[i]));
                }
            }
        }
    }

    #[test]
    fn unweighted_graph_gets_unit_weights() {
        let g = grid2d(3, 3);
        let p = block_partition(9, 2);
        let dg = &DistGraph::build_all(&g, &p)[0];
        let (_, _, sweights) = weight_sorted_csr(dg);
        assert!(sweights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn ghost_owner_iteration_matches_manual_scan() {
        let g = grid2d(6, 6);
        let p = block_partition(36, 3);
        for dg in DistGraph::build_all(&g, &p) {
            for v in 0..dg.n_local as u32 {
                let got: Vec<Rank> = ghost_neighbor_owners(&dg, v).collect();
                let want: Vec<Rank> = dg
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| dg.is_ghost(u))
                    .map(|&u| dg.owner(u))
                    .collect();
                assert_eq!(got, want);
                assert_eq!(!got.is_empty(), dg.is_boundary[v as usize]);
            }
        }
    }
}
