//! Distributed-graph construction: per-rank local graphs with ghost
//! vertices.
//!
//! §3.3 of the paper: "Cross edges are represented using ghost vertices: a
//! boundary vertex u is stored on its corresponding processor p(u) as well
//! as on every other processor p(v) such that (u, v) is a cross edge. On
//! processor p(v) vertex u represents a ghost vertex."
//!
//! Local index layout on each rank: owned vertices occupy `0..n_local`,
//! ghosts occupy `n_local..n_local + n_ghost`. Only owned vertices carry an
//! adjacency row.

use crate::Partition;
use cmg_graph::util::FxHashMap;
use cmg_graph::{CsrGraph, VertexId, Weight};

/// A rank (re-declared locally to avoid a dependency on `cmg-runtime`;
/// the numeric type matches `cmg_runtime::Rank`).
pub type Rank = u32;

/// One rank's piece of a distributed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DistGraph {
    /// This rank's id.
    pub rank: Rank,
    /// Total number of ranks.
    pub num_ranks: Rank,
    /// Number of owned (local) vertices.
    pub n_local: usize,
    /// CSR offsets over owned vertices (length `n_local + 1`).
    pub xadj: Vec<usize>,
    /// Adjacency in *local indices* (owned or ghost).
    pub adj: Vec<u32>,
    /// Edge weights parallel to `adj` (empty if the global graph is
    /// unweighted).
    pub weights: Vec<Weight>,
    /// Global id of each local index (owned then ghosts).
    pub global_ids: Vec<VertexId>,
    /// Owner rank of each ghost, indexed by `local - n_local`.
    pub ghost_owner: Vec<Rank>,
    /// Global id → local index, for owned and ghost vertices of this rank.
    pub global_to_local: FxHashMap<VertexId, u32>,
    /// `is_boundary[v]` for owned `v`: has at least one ghost neighbor.
    pub is_boundary: Vec<bool>,
    /// Sorted list of neighboring ranks (ranks owning at least one ghost).
    pub neighbor_ranks: Vec<Rank>,
}

impl DistGraph {
    /// Builds every rank's local graph from a global graph and partition
    /// (the paper assumes "the input graph is pre-distributed").
    ///
    /// # Panics
    /// Panics if graph and partition disagree on the vertex count.
    pub fn build_all(g: &CsrGraph, partition: &Partition) -> Vec<DistGraph> {
        assert_eq!(g.num_vertices(), partition.num_vertices());
        let p = partition.num_parts();

        // Owned vertices per rank, in global-id order (deterministic).
        let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); p as usize];
        for v in 0..g.num_vertices() as VertexId {
            owned[partition.owner(v) as usize].push(v);
        }

        (0..p)
            .map(|rank| Self::build_one(g, partition, rank, &owned[rank as usize]))
            .collect()
    }

    /// Builds a single rank's local graph. A rank's [`DistGraph`]
    /// depends only on the edges incident to its owned vertices, so an
    /// incremental caller (cmg-serve) can refresh just the ranks whose
    /// owned vertices touched a mutation instead of rebuilding all `p`
    /// slices.
    ///
    /// # Panics
    /// Panics if graph and partition disagree on the vertex count.
    pub fn build_for_rank(g: &CsrGraph, partition: &Partition, rank: Rank) -> DistGraph {
        assert_eq!(g.num_vertices(), partition.num_vertices());
        let owned: Vec<VertexId> = (0..g.num_vertices() as VertexId)
            .filter(|&v| partition.owner(v) == rank)
            .collect();
        Self::build_one(g, partition, rank, &owned)
    }

    fn build_one(g: &CsrGraph, partition: &Partition, rank: Rank, owned: &[VertexId]) -> DistGraph {
        let n_local = owned.len();
        let mut global_ids: Vec<VertexId> = owned.to_vec();
        let mut global_to_local: FxHashMap<VertexId, u32> = FxHashMap::default();
        for (i, &v) in owned.iter().enumerate() {
            global_to_local.insert(v, i as u32);
        }

        // Discover ghosts in deterministic order (scan owned adjacency).
        let mut ghost_owner: Vec<Rank> = Vec::new();
        for &v in owned {
            for &u in g.neighbors(v) {
                let o = partition.owner(u);
                if o != rank && !global_to_local.contains_key(&u) {
                    let idx = (n_local + ghost_owner.len()) as u32;
                    global_to_local.insert(u, idx);
                    global_ids.push(u);
                    ghost_owner.push(o);
                }
            }
        }

        // Local CSR over owned vertices.
        let mut xadj = Vec::with_capacity(n_local + 1);
        xadj.push(0usize);
        let mut adj = Vec::new();
        let mut weights = Vec::new();
        let weighted = g.is_weighted();
        let mut is_boundary = vec![false; n_local];
        for (i, &v) in owned.iter().enumerate() {
            for (u, w) in g.neighbors_weighted(v) {
                let lu = global_to_local[&u];
                adj.push(lu);
                if weighted {
                    weights.push(w);
                }
                if lu as usize >= n_local {
                    is_boundary[i] = true;
                }
            }
            xadj.push(adj.len());
        }

        let mut neighbor_ranks: Vec<Rank> = ghost_owner.clone();
        neighbor_ranks.sort_unstable();
        neighbor_ranks.dedup();

        DistGraph {
            rank,
            num_ranks: partition.num_parts(),
            n_local,
            xadj,
            adj,
            weights,
            global_ids,
            ghost_owner,
            global_to_local,
            is_boundary,
            neighbor_ranks,
        }
    }

    /// Number of ghost vertices.
    #[inline]
    pub fn n_ghost(&self) -> usize {
        self.ghost_owner.len()
    }

    /// Total local indices (owned + ghost).
    #[inline]
    pub fn n_total(&self) -> usize {
        self.n_local + self.n_ghost()
    }

    /// `true` if local index `v` refers to a ghost.
    #[inline]
    pub fn is_ghost(&self, v: u32) -> bool {
        v as usize >= self.n_local
    }

    /// Owner rank of local index `v` (self for owned vertices).
    #[inline]
    pub fn owner(&self, v: u32) -> Rank {
        if self.is_ghost(v) {
            self.ghost_owner[v as usize - self.n_local]
        } else {
            self.rank
        }
    }

    /// Degree of owned vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Neighbors (local indices) of owned vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Neighbor weights parallel to [`Self::neighbors`] (empty if
    /// unweighted).
    #[inline]
    pub fn neighbor_weights(&self, v: u32) -> &[Weight] {
        if self.weights.is_empty() {
            &[]
        } else {
            &self.weights[self.xadj[v as usize]..self.xadj[v as usize + 1]]
        }
    }

    /// Iterates `(neighbor_local, weight)` of owned vertex `v` (weight 1.0
    /// if unweighted).
    pub fn neighbors_weighted(&self, v: u32) -> impl Iterator<Item = (u32, Weight)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        let weighted = !self.weights.is_empty();
        (lo..hi).map(move |i| (self.adj[i], if weighted { self.weights[i] } else { 1.0 }))
    }

    /// Number of owned boundary vertices.
    pub fn num_boundary(&self) -> usize {
        self.is_boundary.iter().filter(|&&b| b).count()
    }
}

/// Sanity-checks a set of rank-local graphs against the global graph they
/// were built from (test helper; exercised heavily in the integration
/// suite).
pub fn validate_distribution(g: &CsrGraph, parts: &[DistGraph]) -> Result<(), String> {
    let mut seen = vec![false; g.num_vertices()];
    let mut edge_count = 0usize;
    for dg in parts {
        for vl in 0..dg.n_local as u32 {
            let vg = dg.global_ids[vl as usize];
            if seen[vg as usize] {
                return Err(format!("vertex {vg} owned twice"));
            }
            seen[vg as usize] = true;
            if dg.degree(vl) != g.degree(vg) {
                return Err(format!("vertex {vg}: degree mismatch"));
            }
            let mut nbrs: Vec<VertexId> = dg
                .neighbors(vl)
                .iter()
                .map(|&ul| dg.global_ids[ul as usize])
                .collect();
            nbrs.sort_unstable();
            if nbrs != g.neighbors(vg) {
                return Err(format!("vertex {vg}: neighbor set mismatch"));
            }
            edge_count += dg.degree(vl);
        }
        for (gi, &owner) in dg.ghost_owner.iter().enumerate() {
            if owner == dg.rank {
                return Err(format!(
                    "rank {}: ghost {} owned by itself",
                    dg.rank,
                    dg.global_ids[dg.n_local + gi]
                ));
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err("some vertex owned by no rank".into());
    }
    if edge_count != 2 * g.num_edges() {
        return Err(format!(
            "directed edge count mismatch: {} vs {}",
            edge_count,
            2 * g.num_edges()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{block_partition, grid2d_partition, hash_partition};
    use cmg_graph::generators::grid2d;
    use cmg_graph::weights::{assign_weights, WeightScheme};

    #[test]
    fn grid_distribution_is_consistent() {
        let g = grid2d(6, 6);
        let p = grid2d_partition(6, 6, 2, 2);
        let parts = DistGraph::build_all(&g, &p);
        assert_eq!(parts.len(), 4);
        validate_distribution(&g, &parts).unwrap();
        // Each rank owns a 3x3 subgrid; corner subgrids have 5 boundary
        // vertices (the two interior-facing sides).
        for dg in &parts {
            assert_eq!(dg.n_local, 9);
            assert_eq!(dg.num_boundary(), 5);
            // 5-point stencil: only the two side-adjacent ranks, no diagonal.
            assert_eq!(dg.neighbor_ranks.len(), 2);
        }
    }

    #[test]
    fn five_point_grid_has_no_diagonal_rank_neighbors() {
        // On a 4x4 grid split 2x2, each rank's ghosts come only from the 2
        // side-adjacent ranks (5-point stencil has no diagonals).
        let g = grid2d(4, 4);
        let p = grid2d_partition(4, 4, 2, 2);
        let parts = DistGraph::build_all(&g, &p);
        for dg in &parts {
            assert_eq!(dg.neighbor_ranks.len(), 2, "rank {}", dg.rank);
        }
    }

    #[test]
    fn weights_survive_distribution() {
        let g = assign_weights(&grid2d(5, 5), WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 3);
        let p = block_partition(25, 3);
        let parts = DistGraph::build_all(&g, &p);
        validate_distribution(&g, &parts).unwrap();
        for dg in &parts {
            for vl in 0..dg.n_local as u32 {
                let vg = dg.global_ids[vl as usize];
                for (ul, w) in dg.neighbors_weighted(vl) {
                    let ug = dg.global_ids[ul as usize];
                    assert_eq!(g.edge_weight(vg, ug), Some(w));
                }
            }
        }
    }

    #[test]
    fn ghost_maps_are_inverse() {
        let g = grid2d(8, 8);
        let p = hash_partition(64, 4, 9);
        let parts = DistGraph::build_all(&g, &p);
        validate_distribution(&g, &parts).unwrap();
        for dg in &parts {
            for (gid, &lid) in &dg.global_to_local {
                assert_eq!(dg.global_ids[lid as usize], *gid);
            }
            assert_eq!(dg.global_to_local.len(), dg.n_total());
        }
    }

    #[test]
    fn empty_rank_is_fine() {
        // 3 vertices, 4 ranks: one rank owns nothing.
        let g = grid2d(1, 3);
        let p = block_partition(3, 4);
        let parts = DistGraph::build_all(&g, &p);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[3].n_local, 0);
        assert_eq!(parts[3].n_ghost(), 0);
        validate_distribution(&g, &parts).unwrap();
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let g = grid2d(4, 4);
        let p = Partition::single(16);
        let parts = DistGraph::build_all(&g, &p);
        assert_eq!(parts[0].n_ghost(), 0);
        assert_eq!(parts[0].num_boundary(), 0);
        assert!(parts[0].neighbor_ranks.is_empty());
    }
}
