//! The partition type and its quality metrics.

use cmg_graph::{CsrGraph, VertexId};

/// A `k`-way vertex partition: `assignment[v]` is the part (rank) owning
/// vertex `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    num_parts: u32,
}

impl Partition {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_parts` or `num_parts == 0`.
    pub fn new(assignment: Vec<u32>, num_parts: u32) -> Self {
        assert!(num_parts > 0, "need at least one part");
        assert!(
            assignment.iter().all(|&p| p < num_parts),
            "part id out of range"
        );
        Partition {
            assignment,
            num_parts,
        }
    }

    /// The trivial 1-part partition.
    pub fn single(n: usize) -> Self {
        Partition {
            assignment: vec![0; n],
            num_parts: 1,
        }
    }

    /// Number of parts (ranks).
    #[inline]
    pub fn num_parts(&self) -> u32 {
        self.num_parts
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Owner of vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Part sizes (vertices per part).
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Computes quality metrics against `g`.
    pub fn quality(&self, g: &CsrGraph) -> PartitionQuality {
        assert_eq!(
            g.num_vertices(),
            self.assignment.len(),
            "graph/partition mismatch"
        );
        let mut cut = 0usize;
        let mut boundary = 0usize;
        for v in 0..g.num_vertices() as VertexId {
            let pv = self.owner(v);
            let mut is_boundary = false;
            for &u in g.neighbors(v) {
                if self.owner(u) != pv {
                    is_boundary = true;
                    if u > v {
                        cut += 1;
                    }
                }
            }
            if is_boundary {
                boundary += 1;
            }
        }
        let sizes = self.part_sizes();
        let max_size = sizes.iter().copied().max().unwrap_or(0);
        let mean = g.num_vertices() as f64 / self.num_parts as f64;
        PartitionQuality {
            edge_cut: cut,
            cut_fraction: if g.num_edges() == 0 {
                0.0
            } else {
                cut as f64 / g.num_edges() as f64
            },
            boundary_vertices: boundary,
            boundary_fraction: if g.num_vertices() == 0 {
                0.0
            } else {
                boundary as f64 / g.num_vertices() as f64
            },
            imbalance: if mean == 0.0 {
                1.0
            } else {
                max_size as f64 / mean
            },
        }
    }
}

/// Quality metrics of a partition (the columns the paper quotes: "edge cut
/// at 4096 processors: 6 %" / "40 %").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Number of cut (cross) edges.
    pub edge_cut: usize,
    /// Cut edges ÷ total edges.
    pub cut_fraction: f64,
    /// Number of boundary vertices.
    pub boundary_vertices: usize,
    /// Boundary vertices ÷ total vertices.
    pub boundary_fraction: f64,
    /// Largest part ÷ average part size (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl std::fmt::Display for PartitionQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cut={} ({:.1}%) boundary={} ({:.1}%) imbalance={:.3}",
            self.edge_cut,
            100.0 * self.cut_fraction,
            self.boundary_vertices,
            100.0 * self.boundary_fraction,
            self.imbalance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::grid2d;

    #[test]
    fn single_part_has_no_cut() {
        let g = grid2d(4, 4);
        let p = Partition::single(16);
        let q = p.quality(&g);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.boundary_vertices, 0);
        assert_eq!(q.imbalance, 1.0);
    }

    #[test]
    fn half_split_of_grid() {
        let g = grid2d(4, 4); // rows 0-1 -> part 0, rows 2-3 -> part 1
        let assignment: Vec<u32> = (0..16).map(|v| if v < 8 { 0 } else { 1 }).collect();
        let p = Partition::new(assignment, 2);
        let q = p.quality(&g);
        assert_eq!(q.edge_cut, 4); // the 4 vertical edges between rows 1 and 2
        assert_eq!(q.boundary_vertices, 8);
        assert_eq!(q.imbalance, 1.0);
        assert!((q.cut_fraction - 4.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn part_sizes_counted() {
        let p = Partition::new(vec![0, 1, 1, 2], 3);
        assert_eq!(p.part_sizes(), vec![1, 2, 1]);
        assert_eq!(p.owner(2), 1);
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn out_of_range_part_rejected() {
        Partition::new(vec![0, 3], 3);
    }

    #[test]
    fn imbalance_detected() {
        let g = grid2d(1, 4);
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let q = p.quality(&g);
        assert_eq!(q.imbalance, 1.5);
    }
}
