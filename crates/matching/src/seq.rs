//! Sequential ½-approximation matching algorithms.
//!
//! All four compute a *maximal* matching whose weight is at least half the
//! optimum; they differ in work, locality, and parallelizability. The
//! candidate-mate algorithm ([`local_dominant`]) is the sequential core of
//! the paper's parallel algorithm (§3.1).

use crate::Matching;
use cmg_graph::{CsrGraph, VertexId, Weight, NO_VERTEX};

/// Greedy matching: sort all edges by decreasing weight (ties: smaller
/// endpoint ids first) and add every edge whose endpoints are both free.
/// `O(m log m)`; the classic ½-approximation (Avis 1983).
pub fn greedy(g: &CsrGraph) -> Matching {
    let mut edges: Vec<(Weight, VertexId, VertexId)> =
        g.edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });
    let mut m = Matching::empty(g.num_vertices());
    for (_, u, v) in edges {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add(u, v);
        }
    }
    m
}

/// Adjacency lists of `g` sorted by decreasing weight (ties: smaller
/// neighbor id — the paper's tie-break: "ties are broken by choosing the
/// neighbor with the smallest label"). Shared by the pointer-based
/// algorithms.
pub(crate) fn weight_sorted_adjacency(g: &CsrGraph) -> (Vec<usize>, Vec<VertexId>, Vec<Weight>) {
    let n = g.num_vertices();
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0usize);
    let mut adj = Vec::with_capacity(2 * g.num_edges());
    let mut wts = Vec::with_capacity(2 * g.num_edges());
    let mut row: Vec<(Weight, VertexId)> = Vec::new();
    for v in 0..n as VertexId {
        row.clear();
        row.extend(g.neighbors_weighted(v).map(|(u, w)| (w, u)));
        row.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(w, u) in &row {
            adj.push(u);
            wts.push(w);
        }
        xadj.push(adj.len());
    }
    (xadj, adj, wts)
}

/// Locally-dominant (candidate-mate) matching — the sequential algorithm
/// of §3.1: every vertex points at its heaviest available neighbor; a
/// mutual pointing is a locally dominant edge and is matched; newly
/// unavailable vertices trigger candidate recomputation through a queue.
///
/// `O(|E| log Δ)` with weight-sorted adjacency lists; expected `O(|E|)`
/// for uniformly-random weights.
pub fn local_dominant(g: &CsrGraph) -> Matching {
    let n = g.num_vertices();
    let (xadj, adj, _wts) = weight_sorted_adjacency(g);
    let mut m = Matching::empty(n);
    // ptr[v]: position of v's candidate mate in its sorted adjacency.
    let mut ptr: Vec<usize> = (0..n).map(|v| xadj[v]).collect();
    let mut candidate = vec![NO_VERTEX; n];
    let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();

    // advance(v): first still-unmatched neighbor in weight order.
    let advance = |v: VertexId, ptr: &mut [usize], m: &Matching| -> VertexId {
        let hi = xadj[v as usize + 1];
        while ptr[v as usize] < hi && m.is_matched(adj[ptr[v as usize]]) {
            ptr[v as usize] += 1;
        }
        if ptr[v as usize] < hi {
            adj[ptr[v as usize]]
        } else {
            NO_VERTEX
        }
    };

    // Initial candidates and initial locally-dominant edges.
    for v in 0..n as VertexId {
        candidate[v as usize] = advance(v, &mut ptr, &m);
    }
    for v in 0..n as VertexId {
        let c = candidate[v as usize];
        if c != NO_VERTEX && !m.is_matched(v) && !m.is_matched(c) && candidate[c as usize] == v {
            m.add(v, c);
            queue.push_back(v);
            queue.push_back(c);
        }
    }

    // Propagate: matched vertices invalidate their neighbors' candidates.
    while let Some(x) = queue.pop_front() {
        for &w in &adj[xadj[x as usize]..xadj[x as usize + 1]] {
            if m.is_matched(w) || candidate[w as usize] != x {
                continue;
            }
            let c = advance(w, &mut ptr, &m);
            candidate[w as usize] = c;
            if c != NO_VERTEX && candidate[c as usize] == w && !m.is_matched(c) {
                m.add(w, c);
                queue.push_back(w);
                queue.push_back(c);
            }
        }
    }
    m
}

/// Path-growing algorithm (Drake–Hougardy): grow vertex-disjoint paths by
/// always following the heaviest incident edge, alternately assigning
/// edges to two matchings; return the heavier of the two, made maximal by
/// a greedy pass. `O(m)` after sorting; ½-approximation.
pub fn path_growing(g: &CsrGraph) -> Matching {
    let n = g.num_vertices();
    let mut used = vec![false; n];
    // Edge sets of the two alternating matchings.
    let mut sets: [Vec<(VertexId, VertexId, Weight)>; 2] = [Vec::new(), Vec::new()];
    for start in 0..n as VertexId {
        if used[start as usize] {
            continue;
        }
        let mut v = start;
        let mut which = 0usize;
        loop {
            used[v as usize] = true;
            // Heaviest edge to an unused vertex (ties: smaller id).
            let mut best: Option<(Weight, VertexId)> = None;
            for (u, w) in g.neighbors_weighted(v) {
                if !used[u as usize] {
                    let better = match best {
                        None => true,
                        Some((bw, bu)) => w > bw || (w == bw && u < bu),
                    };
                    if better {
                        best = Some((w, u));
                    }
                }
            }
            match best {
                Some((w, u)) => {
                    sets[which].push((v, u, w));
                    which ^= 1;
                    v = u;
                }
                None => break,
            }
        }
    }
    let weight_of = |s: &[(VertexId, VertexId, Weight)]| s.iter().map(|e| e.2).sum::<Weight>();
    let pick = if weight_of(&sets[0]) >= weight_of(&sets[1]) {
        0
    } else {
        1
    };
    let mut m = Matching::empty(n);
    for &(u, v, _) in &sets[pick] {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add(u, v);
        }
    }
    // The winning path-matching may leave augmentable edges; a greedy
    // completion keeps the bound and restores maximality.
    let mut edges: Vec<(Weight, VertexId, VertexId)> =
        g.edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
    for (_, u, v) in edges {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add(u, v);
        }
    }
    m
}

/// Suitor algorithm (Manne–Halappanavar): every vertex proposes to its
/// heaviest neighbor that does not already hold a heavier proposal,
/// dethroning weaker suitors. Produces exactly the locally-dominant
/// matching, usually with fewer candidate recomputations.
pub fn suitor(g: &CsrGraph) -> Matching {
    let n = g.num_vertices();
    let mut suitor_of = vec![NO_VERTEX; n];
    let mut suitor_w = vec![f64::NEG_INFINITY; n];
    for start in 0..n as VertexId {
        let mut current = start;
        let mut done = false;
        while !done {
            done = true;
            // Best partner for `current`: heaviest neighbor where we would
            // displace a strictly weaker suitor (ties: smaller proposer id
            // wins, mirroring the smallest-label rule).
            let mut best = NO_VERTEX;
            let mut best_w = f64::NEG_INFINITY;
            for (u, w) in g.neighbors_weighted(current) {
                let beats_current_suitor = w > suitor_w[u as usize]
                    || (w == suitor_w[u as usize]
                        && suitor_of[u as usize] != NO_VERTEX
                        && current < suitor_of[u as usize]);
                let better_than_best = w > best_w || (w == best_w && u < best);
                if beats_current_suitor && better_than_best {
                    best = u;
                    best_w = w;
                }
            }
            if best != NO_VERTEX {
                let displaced = suitor_of[best as usize];
                suitor_of[best as usize] = current;
                suitor_w[best as usize] = best_w;
                if displaced != NO_VERTEX {
                    current = displaced;
                    done = false;
                }
            }
        }
    }
    let mut m = Matching::empty(n);
    for v in 0..n as VertexId {
        let s = suitor_of[v as usize];
        if s != NO_VERTEX && !m.is_matched(v) && suitor_of[s as usize] == v {
            m.add(v, s);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::generators::{complete, erdos_renyi, grid2d};
    use cmg_graph::weights::{assign_weights, WeightScheme};
    use cmg_graph::GraphBuilder;

    fn paper_triangle() -> CsrGraph {
        // The Figure 3.1 example: w(u,v)=3, w(u,w)=2, w(v,w)=1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 3.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 1.0);
        b.build()
    }

    type AlgList = Vec<(&'static str, fn(&CsrGraph) -> Matching)>;

    fn all_algorithms() -> AlgList {
        vec![
            ("greedy", greedy as fn(&CsrGraph) -> Matching),
            ("local_dominant", local_dominant),
            ("path_growing", path_growing),
            ("suitor", suitor),
        ]
    }

    #[test]
    fn figure31_example_matches_heaviest_edge() {
        let g = paper_triangle();
        for (name, alg) in all_algorithms() {
            let m = alg(&g);
            assert_eq!(m.mate(0), 1, "{name}");
            assert_eq!(m.mate(1), 0, "{name}");
            assert!(!m.is_matched(2), "{name}: w must fail to match");
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn all_algorithms_valid_and_maximal_on_random_graphs() {
        for seed in 0..5 {
            let g = assign_weights(
                &erdos_renyi(60, 180, seed),
                WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
                seed,
            );
            for (name, alg) in all_algorithms() {
                let m = alg(&g);
                m.validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(m.is_maximal(&g), "{name} not maximal (seed {seed})");
            }
        }
    }

    #[test]
    fn local_dominant_equals_greedy_weight_on_distinct_weights() {
        // With all-distinct weights, greedy and locally-dominant produce
        // the same matching (both pick globally dominant edges in order).
        for seed in 0..5 {
            let g = assign_weights(
                &erdos_renyi(40, 120, seed),
                WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
                100 + seed,
            );
            let wg = greedy(&g).weight(&g);
            let wl = local_dominant(&g).weight(&g);
            let ws = suitor(&g).weight(&g);
            assert!((wg - wl).abs() < 1e-9, "seed {seed}: {wg} vs {wl}");
            assert!((wg - ws).abs() < 1e-9, "seed {seed}: {wg} vs {ws}");
        }
    }

    #[test]
    fn equal_weights_still_give_valid_maximal_matchings() {
        let g = assign_weights(&complete(9), WeightScheme::Equal(1.0), 0);
        for (name, alg) in all_algorithms() {
            let m = alg(&g);
            m.validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(m.is_maximal(&g), "{name}");
            assert_eq!(m.cardinality(), 4, "{name}: complete(9) perfect-ish");
        }
    }

    #[test]
    fn grid_with_random_weights() {
        let g = assign_weights(
            &grid2d(10, 10),
            WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
            5,
        );
        for (name, alg) in all_algorithms() {
            let m = alg(&g);
            m.validate(&g).unwrap();
            assert!(m.is_maximal(&g), "{name}");
            assert!(
                m.cardinality() >= 34,
                "{name}: cardinality {}",
                m.cardinality()
            );
        }
    }

    #[test]
    fn empty_and_single_vertex() {
        let empty = CsrGraph::empty(0);
        let single = CsrGraph::empty(1);
        for (_, alg) in all_algorithms() {
            assert_eq!(alg(&empty).cardinality(), 0);
            assert_eq!(alg(&single).cardinality(), 0);
        }
    }

    #[test]
    fn sorted_adjacency_is_descending() {
        let g = paper_triangle();
        let (xadj, adj, wts) = weight_sorted_adjacency(&g);
        assert_eq!(&adj[xadj[0]..xadj[1]], &[1, 2]);
        assert_eq!(&wts[xadj[0]..xadj[1]], &[3.0, 2.0]);
    }
}
