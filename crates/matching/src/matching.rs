//! The matching result type and its verification.

use cmg_graph::{CsrGraph, VertexId, Weight, NO_VERTEX};

/// A matching: `mate[v]` is `v`'s partner, or [`NO_VERTEX`] if unmatched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<VertexId>,
}

impl Matching {
    /// An empty matching on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Matching {
            mate: vec![NO_VERTEX; n],
        }
    }

    /// Wraps a mate vector.
    pub fn from_mates(mate: Vec<VertexId>) -> Self {
        Matching { mate }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.mate.len()
    }

    /// `v`'s partner, or [`NO_VERTEX`].
    #[inline]
    pub fn mate(&self, v: VertexId) -> VertexId {
        self.mate[v as usize]
    }

    /// The whole mate vector (`mates()[v]` = `v`'s partner or
    /// [`NO_VERTEX`]) — the retained-state input of warm-start repair.
    #[inline]
    pub fn mates(&self) -> &[VertexId] {
        &self.mate
    }

    /// `true` if `v` is matched.
    #[inline]
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.mate[v as usize] != NO_VERTEX
    }

    /// Adds the edge `{u, v}` to the matching.
    ///
    /// # Panics
    /// Panics (debug) if either endpoint is already matched.
    #[inline]
    pub fn add(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(!self.is_matched(u) && !self.is_matched(v));
        self.mate[u as usize] = v;
        self.mate[v as usize] = u;
    }

    /// Number of matched edges.
    pub fn cardinality(&self) -> usize {
        self.mate.iter().filter(|&&m| m != NO_VERTEX).count() / 2
    }

    /// Sum of matched-edge weights in `g`.
    ///
    /// # Panics
    /// Panics if a matched pair is not an edge of `g`.
    pub fn weight(&self, g: &CsrGraph) -> Weight {
        let mut total = 0.0;
        for v in 0..self.mate.len() as VertexId {
            let m = self.mate[v as usize];
            if m != NO_VERTEX && v < m {
                total += g
                    .edge_weight(v, m)
                    .unwrap_or_else(|| panic!("matched pair ({v},{m}) is not an edge"));
            }
        }
        total
    }

    /// Iterates matched edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.mate.iter().enumerate().filter_map(|(v, &m)| {
            (m != NO_VERTEX && (v as VertexId) < m).then_some((v as VertexId, m))
        })
    }

    /// Checks structural validity against `g`: symmetry (`mate[mate[v]] ==
    /// v`) and that every matched pair is an actual edge.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        if self.mate.len() != g.num_vertices() {
            return Err("matching size does not match graph".into());
        }
        for v in 0..self.mate.len() as VertexId {
            let m = self.mate[v as usize];
            if m == NO_VERTEX {
                continue;
            }
            if m == v {
                return Err(format!("vertex {v} matched to itself"));
            }
            if self.mate[m as usize] != v {
                return Err(format!("mate of {v} is {m} but mate of {m} is not {v}"));
            }
            if !g.has_edge(v, m) {
                return Err(format!("matched pair ({v},{m}) is not an edge"));
            }
        }
        Ok(())
    }

    /// Checks maximality: no edge has both endpoints unmatched.
    /// (Every locally-dominant / greedy matching is maximal, and a maximal
    /// matching is what guarantees the ½-approximation bound.)
    pub fn is_maximal(&self, g: &CsrGraph) -> bool {
        g.edges()
            .all(|(u, v, _)| self.is_matched(u) || self.is_matched(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmg_graph::GraphBuilder;

    fn path3() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        b.build()
    }

    #[test]
    fn add_and_query() {
        let mut m = Matching::empty(3);
        assert!(!m.is_matched(0));
        m.add(1, 2);
        assert_eq!(m.mate(1), 2);
        assert_eq!(m.mate(2), 1);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.weight(&path3()), 3.0);
        m.validate(&path3()).unwrap();
    }

    #[test]
    fn maximality() {
        let g = path3();
        let mut m = Matching::empty(3);
        assert!(!m.is_maximal(&g));
        m.add(0, 1);
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn validate_rejects_non_edge() {
        let g = path3();
        let mut m = Matching::empty(3);
        m.add(0, 2); // not an edge
        assert!(m.validate(&g).is_err());
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let g = path3();
        let m = Matching::from_mates(vec![1, NO_VERTEX, NO_VERTEX]);
        assert!(m.validate(&g).is_err());
    }

    #[test]
    fn edges_iterate_once() {
        let mut m = Matching::empty(4);
        m.add(3, 0);
        assert_eq!(m.edges().collect::<Vec<_>>(), vec![(0, 3)]);
    }
}
