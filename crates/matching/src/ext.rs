//! Matching extensions beyond the paper's core problem, following the
//! fourth author's thesis (ref \[9\], "Algorithms for vertex-weighted
//! matching in graphs") and the suitor line of work:
//!
//! * [`b_suitor`]: ½-approximate **b-matching** — every vertex `v` may be
//!   matched to up to `b(v)` partners, maximizing total edge weight;
//! * [`vertex_weighted_greedy`]: greedy **vertex-weighted matching** —
//!   maximize the sum of *vertex* weights covered by the matching (the
//!   objective behind block-triangular decompositions and sparse-basis
//!   computations in the paper's introduction).

use crate::Matching;
use cmg_graph::{CsrGraph, VertexId, Weight, NO_VERTEX};
use std::collections::BinaryHeap;

/// A b-matching: each vertex holds a set of partners.
#[derive(Clone, Debug)]
pub struct BMatching {
    partners: Vec<Vec<VertexId>>,
}

impl BMatching {
    /// Partners of `v`.
    pub fn partners(&self, v: VertexId) -> &[VertexId] {
        &self.partners[v as usize]
    }

    /// Number of matched edges.
    pub fn num_edges(&self) -> usize {
        self.partners.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Total weight of matched edges in `g`.
    pub fn weight(&self, g: &CsrGraph) -> Weight {
        let mut total = 0.0;
        for v in 0..self.partners.len() as VertexId {
            for &u in &self.partners[v as usize] {
                if v < u {
                    debug_assert!(g.has_edge(v, u), "partner {u} of {v} must be a neighbor");
                    total += g.edge_weight(v, u).unwrap_or_default();
                }
            }
        }
        total
    }

    /// Validates against `g` and the capacity function `b`.
    pub fn validate(&self, g: &CsrGraph, b: &dyn Fn(VertexId) -> usize) -> Result<(), String> {
        for v in 0..self.partners.len() as VertexId {
            let ps = &self.partners[v as usize];
            if ps.len() > b(v) {
                return Err(format!("vertex {v} exceeds capacity: {}", ps.len()));
            }
            let mut sorted = ps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ps.len() {
                return Err(format!("vertex {v} has duplicate partners"));
            }
            for &u in ps {
                if !g.has_edge(v, u) {
                    return Err(format!("({v},{u}) is not an edge"));
                }
                if !self.partners[u as usize].contains(&v) {
                    return Err(format!("({v},{u}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Converts a `b ≡ 1` b-matching into a plain [`Matching`].
    pub fn to_matching(&self) -> Matching {
        let mate = self
            .partners
            .iter()
            .map(|p| p.first().copied().unwrap_or(NO_VERTEX))
            .collect();
        Matching::from_mates(mate)
    }
}

/// ½-approximate maximum-weight b-matching by the b-suitor algorithm
/// (Khan–Pothen et al.): every vertex proposes to its `b(v)` heaviest
/// neighbors, displacing weaker proposals; displaced vertices re-propose.
///
/// With `b ≡ 1` this is exactly the suitor algorithm and produces the
/// locally-dominant matching.
pub fn b_suitor(g: &CsrGraph, b: impl Fn(VertexId) -> usize) -> BMatching {
    let n = g.num_vertices();
    // suitors[u]: min-heap (by (weight, proposer), weakest on top) of
    // current proposals held by u, capacity b(u).
    #[derive(PartialEq)]
    struct Prop(Weight, VertexId);
    impl Eq for Prop {}
    impl Ord for Prop {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed for a min-heap; ties: larger proposer id is weaker
            // (smallest-label preference).
            other
                .0
                .total_cmp(&self.0)
                .then_with(|| self.1.cmp(&other.1).reverse())
        }
    }
    impl PartialOrd for Prop {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut suitors: Vec<BinaryHeap<Prop>> = (0..n).map(|_| BinaryHeap::new()).collect();
    // Number of outstanding proposals each vertex has made.
    let mut made: Vec<usize> = vec![0; n];
    // Work stack of vertices that still owe proposals.
    let mut stack: Vec<VertexId> = (0..n as VertexId).rev().collect();

    // A proposal from `v` to `u` with weight `w` is *admissible* if u has
    // spare capacity or w beats u's weakest current suitor.
    while let Some(v) = stack.pop() {
        while made[v as usize] < b(v) {
            // Strongest admissible neighbor not already proposed to.
            let mut best: Option<(Weight, VertexId)> = None;
            for (u, w) in g.neighbors_weighted(v) {
                if suitors[u as usize].iter().any(|p| p.1 == v) {
                    continue; // already proposing to u
                }
                let cap = b(u);
                let admissible = suitors[u as usize].len() < cap
                    || suitors[u as usize].peek().is_some_and(|weakest| {
                        (w, std::cmp::Reverse(v)) > (weakest.0, std::cmp::Reverse(weakest.1))
                    });
                if admissible {
                    let better = match best {
                        None => true,
                        Some((bw, bu)) => w > bw || (w == bw && u < bu),
                    };
                    if better {
                        best = Some((w, u));
                    }
                }
            }
            let Some((w, u)) = best else { break };
            // Propose; displace the weakest if over capacity.
            suitors[u as usize].push(Prop(w, v));
            made[v as usize] += 1;
            if let Some(Prop(_, displaced)) = (suitors[u as usize].len() > b(u))
                .then(|| suitors[u as usize].pop())
                .flatten()
            {
                made[displaced as usize] -= 1;
                stack.push(displaced);
            }
        }
    }

    // Matched pairs = mutual proposals… in b-suitor, the final suitor
    // lists themselves are the matching (every accepted proposal is kept).
    let mut partners: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for u in 0..n {
        for p in suitors[u].iter() {
            partners[u].push(p.1);
        }
    }
    // Symmetrize: keep (u,v) only if both sides hold the proposal? The
    // b-suitor invariant at quiescence makes suitor lists one-sided
    // records of accepted proposals: v proposing to u means the edge is
    // matched. Mirror them.
    let mut mirrored: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for u in 0..n as VertexId {
        for &v in &partners[u as usize] {
            mirrored[u as usize].push(v);
            mirrored[v as usize].push(u);
        }
    }
    for l in &mut mirrored {
        l.sort_unstable();
        l.dedup();
    }
    BMatching { partners: mirrored }
}

/// Greedy vertex-weighted matching: maximize the total *vertex* weight
/// covered. Processes vertices by decreasing weight; each unmatched vertex
/// grabs its heaviest unmatched neighbor. ½-approximation for the
/// vertex-weighted objective.
///
/// `vertex_weight[v]` must have length `n`.
pub fn vertex_weighted_greedy(g: &CsrGraph, vertex_weight: &[Weight]) -> Matching {
    assert_eq!(vertex_weight.len(), g.num_vertices());
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    order.sort_by(|&a, &b| {
        vertex_weight[b as usize]
            .total_cmp(&vertex_weight[a as usize])
            .then(a.cmp(&b))
    });
    let mut m = Matching::empty(g.num_vertices());
    for &v in &order {
        if m.is_matched(v) {
            continue;
        }
        // Heaviest unmatched neighbor by vertex weight (ties: smaller id).
        let mut best: Option<(Weight, VertexId)> = None;
        for &u in g.neighbors(v) {
            if !m.is_matched(u) {
                let w = vertex_weight[u as usize];
                let better = match best {
                    None => true,
                    Some((bw, bu)) => w > bw || (w == bw && u < bu),
                };
                if better {
                    best = Some((w, u));
                }
            }
        }
        if let Some((_, u)) = best {
            m.add(v, u);
        }
    }
    m
}

/// Total vertex weight covered by a matching.
pub fn covered_vertex_weight(m: &Matching, vertex_weight: &[Weight]) -> Weight {
    (0..m.num_vertices() as VertexId)
        .filter(|&v| m.is_matched(v))
        .map(|v| vertex_weight[v as usize])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use cmg_graph::generators::{complete, erdos_renyi, grid2d, star};
    use cmg_graph::weights::{assign_weights, WeightScheme};

    fn uniform(n: usize, m: usize, seed: u64) -> CsrGraph {
        assign_weights(
            &erdos_renyi(n, m, seed),
            WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
            seed,
        )
    }

    #[test]
    fn b1_suitor_equals_plain_suitor() {
        for seed in 0..5 {
            let g = uniform(40, 120, seed);
            let bm = b_suitor(&g, |_| 1);
            bm.validate(&g, &|_| 1).unwrap();
            let expected = seq::suitor(&g);
            assert_eq!(bm.to_matching(), expected, "seed {seed}");
        }
    }

    #[test]
    fn b2_respects_capacities_and_beats_b1_weight() {
        for seed in 0..5 {
            let g = uniform(40, 160, seed);
            let b2 = b_suitor(&g, |_| 2);
            b2.validate(&g, &|_| 2).unwrap();
            let b1 = b_suitor(&g, |_| 1);
            assert!(
                b2.weight(&g) >= b1.weight(&g) - 1e-9,
                "seed {seed}: b=2 weight {} < b=1 weight {}",
                b2.weight(&g),
                b1.weight(&g)
            );
        }
    }

    #[test]
    fn heterogeneous_capacities() {
        let g = uniform(30, 90, 7);
        let b = |v: VertexId| 1 + (v as usize % 3);
        let bm = b_suitor(&g, b);
        bm.validate(&g, &b).unwrap();
    }

    #[test]
    fn star_with_b_on_hub() {
        // Hub with b=3 can take its three heaviest leaves.
        let g = assign_weights(&star(6), WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 2);
        let bm = b_suitor(&g, |v| if v == 0 { 3 } else { 1 });
        bm.validate(&g, &|v| if v == 0 { 3 } else { 1 }).unwrap();
        assert_eq!(bm.partners(0).len(), 3);
        // They are the heaviest three.
        let mut ws: Vec<Weight> = g.neighbor_weights(0).to_vec();
        ws.sort_by(|a, b| b.total_cmp(a));
        let expect: Weight = ws[..3].iter().sum();
        assert!((bm.weight(&g) - expect).abs() < 1e-9);
    }

    #[test]
    fn b_suitor_on_complete_graph_is_half_approx_of_trivial_bound() {
        let g = assign_weights(&complete(8), WeightScheme::Uniform { lo: 0.5, hi: 1.0 }, 3);
        let bm = b_suitor(&g, |_| 2);
        bm.validate(&g, &|_| 2).unwrap();
        // With b=2 and 8 vertices, at most 8 edges can be matched.
        assert!(bm.num_edges() <= 8);
        assert!(bm.num_edges() >= 6);
    }

    #[test]
    fn zero_capacity_vertices_stay_unmatched() {
        let g = uniform(10, 30, 4);
        let bm = b_suitor(&g, |v| if v < 5 { 0 } else { 1 });
        bm.validate(&g, &|v| if v < 5 { 0 } else { 1 }).unwrap();
        for v in 0..5 {
            assert!(bm.partners(v).is_empty());
        }
    }

    #[test]
    fn vertex_weighted_greedy_covers_heavy_vertices() {
        // Path a-b-c with vertex weights 10, 1, 10: matching must cover
        // both heavy endpoints? Impossible (they're not adjacent) — greedy
        // picks (a,b), leaving c; total covered = 11.
        let g = grid2d(1, 3);
        let vw = [10.0, 1.0, 10.0];
        let m = vertex_weighted_greedy(&g, &vw);
        m.validate(&g).unwrap();
        assert_eq!(covered_vertex_weight(&m, &vw), 11.0);
    }

    #[test]
    fn vertex_weighted_greedy_is_maximal_and_valid() {
        for seed in 0..5 {
            let g = erdos_renyi(50, 150, seed);
            let vw: Vec<Weight> = (0..50).map(|v| ((v * 7919) % 100) as f64).collect();
            let m = vertex_weighted_greedy(&g, &vw);
            m.validate(&g).unwrap();
            assert!(m.is_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn equal_vertex_weights_reduce_to_cardinality_greedy() {
        let g = erdos_renyi(30, 90, 2);
        let vw = vec![1.0; 30];
        let m = vertex_weighted_greedy(&g, &vw);
        assert!(m.is_maximal(&g));
        assert_eq!(covered_vertex_weight(&m, &vw), 2.0 * m.cardinality() as f64);
    }
}
