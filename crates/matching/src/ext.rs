//! Matching extensions beyond the paper's core problem, following the
//! fourth author's thesis (ref \[9\], "Algorithms for vertex-weighted
//! matching in graphs") and the suitor line of work:
//!
//! * [`b_suitor`]: ½-approximate **b-matching** — every vertex `v` may be
//!   matched to up to `b(v)` partners, maximizing total edge weight;
//! * [`DistBSuitor`]: the distributed, message-driven form of the same
//!   algorithm, built on the shared substrate ([`HaloView`],
//!   [`weight_sorted_csr`], `wire_codec!`) — optimistic cross-rank
//!   proposals with displacement rejections;
//! * [`vertex_weighted_greedy`]: greedy **vertex-weighted matching** —
//!   maximize the sum of *vertex* weights covered by the matching (the
//!   objective behind block-triangular decompositions and sparse-basis
//!   computations in the paper's introduction).

use crate::Matching;
use cmg_graph::{CsrGraph, VertexId, Weight, NO_VERTEX};
use cmg_partition::{weight_sorted_csr, DistGraph, HaloView};
use cmg_runtime::{wire_codec, RankCtx, RankProgram, Status};
use std::collections::BinaryHeap;

/// A proposal held by a vertex: weight and the (global) proposer id.
/// Ordered as a *min*-heap element — the weakest proposal on top; ties
/// broken so the larger proposer id is weaker (smallest-label
/// preference, consistent on every rank because ids are global).
#[derive(PartialEq)]
struct Prop(Weight, VertexId);
impl Eq for Prop {}
impl Ord for Prop {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Strength is (weight desc, proposer id asc); the heap needs the
        // *weakest* proposal on top, so compare reversed: lower weight is
        // greater, and on weight ties the larger proposer id is greater
        // (= weaker). This matches the admissibility test
        // `(w, Reverse(p)) > (top.0, Reverse(top.1))` exactly — the two
        // orders must agree or displacement compares challengers against
        // the strongest suitor instead of the weakest and ties wedge.
        other
            .0
            .total_cmp(&self.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}
impl PartialOrd for Prop {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A b-matching: each vertex holds a set of partners.
#[derive(Clone, Debug)]
pub struct BMatching {
    partners: Vec<Vec<VertexId>>,
}

impl BMatching {
    /// Partners of `v`.
    pub fn partners(&self, v: VertexId) -> &[VertexId] {
        &self.partners[v as usize]
    }

    /// Number of matched edges.
    pub fn num_edges(&self) -> usize {
        self.partners.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Total weight of matched edges in `g`.
    pub fn weight(&self, g: &CsrGraph) -> Weight {
        let mut total = 0.0;
        for v in 0..self.partners.len() as VertexId {
            for &u in &self.partners[v as usize] {
                if v < u {
                    debug_assert!(g.has_edge(v, u), "partner {u} of {v} must be a neighbor");
                    total += g.edge_weight(v, u).unwrap_or_default();
                }
            }
        }
        total
    }

    /// Validates against `g` and the capacity function `b`.
    pub fn validate(&self, g: &CsrGraph, b: &dyn Fn(VertexId) -> usize) -> Result<(), String> {
        for v in 0..self.partners.len() as VertexId {
            let ps = &self.partners[v as usize];
            if ps.len() > b(v) {
                return Err(format!("vertex {v} exceeds capacity: {}", ps.len()));
            }
            let mut sorted = ps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ps.len() {
                return Err(format!("vertex {v} has duplicate partners"));
            }
            for &u in ps {
                if !g.has_edge(v, u) {
                    return Err(format!("({v},{u}) is not an edge"));
                }
                if !self.partners[u as usize].contains(&v) {
                    return Err(format!("({v},{u}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Converts a `b ≡ 1` b-matching into a plain [`Matching`].
    pub fn to_matching(&self) -> Matching {
        let mate = self
            .partners
            .iter()
            .map(|p| p.first().copied().unwrap_or(NO_VERTEX))
            .collect();
        Matching::from_mates(mate)
    }
}

/// ½-approximate maximum-weight b-matching by the b-suitor algorithm
/// (Khan–Pothen et al.): every vertex proposes to its `b(v)` heaviest
/// neighbors, displacing weaker proposals; displaced vertices re-propose.
///
/// With `b ≡ 1` this is exactly the suitor algorithm and produces the
/// locally-dominant matching.
pub fn b_suitor(g: &CsrGraph, b: impl Fn(VertexId) -> usize) -> BMatching {
    let n = g.num_vertices();
    // suitors[u]: min-heap (by (weight, proposer), weakest on top) of
    // current proposals held by u, capacity b(u).
    let mut suitors: Vec<BinaryHeap<Prop>> = (0..n).map(|_| BinaryHeap::new()).collect();
    // Number of outstanding proposals each vertex has made.
    let mut made: Vec<usize> = vec![0; n];
    // Work stack of vertices that still owe proposals.
    let mut stack: Vec<VertexId> = (0..n as VertexId).rev().collect();

    // A proposal from `v` to `u` with weight `w` is *admissible* if u has
    // spare capacity or w beats u's weakest current suitor.
    while let Some(v) = stack.pop() {
        while made[v as usize] < b(v) {
            // Strongest admissible neighbor not already proposed to.
            let mut best: Option<(Weight, VertexId)> = None;
            for (u, w) in g.neighbors_weighted(v) {
                if suitors[u as usize].iter().any(|p| p.1 == v) {
                    continue; // already proposing to u
                }
                let cap = b(u);
                let admissible = suitors[u as usize].len() < cap
                    || suitors[u as usize].peek().is_some_and(|weakest| {
                        (w, std::cmp::Reverse(v)) > (weakest.0, std::cmp::Reverse(weakest.1))
                    });
                if admissible {
                    let better = match best {
                        None => true,
                        Some((bw, bu)) => w > bw || (w == bw && u < bu),
                    };
                    if better {
                        best = Some((w, u));
                    }
                }
            }
            let Some((w, u)) = best else { break };
            // Propose; displace the weakest if over capacity.
            suitors[u as usize].push(Prop(w, v));
            made[v as usize] += 1;
            if let Some(Prop(_, displaced)) = (suitors[u as usize].len() > b(u))
                .then(|| suitors[u as usize].pop())
                .flatten()
            {
                made[displaced as usize] -= 1;
                stack.push(displaced);
            }
        }
    }

    // Matched pairs = mutual proposals… in b-suitor, the final suitor
    // lists themselves are the matching (every accepted proposal is kept).
    let mut partners: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for u in 0..n {
        for p in suitors[u].iter() {
            partners[u].push(p.1);
        }
    }
    // Symmetrize: keep (u,v) only if both sides hold the proposal? The
    // b-suitor invariant at quiescence makes suitor lists one-sided
    // records of accepted proposals: v proposing to u means the edge is
    // matched. Mirror them.
    let mut mirrored: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for u in 0..n as VertexId {
        for &v in &partners[u as usize] {
            mirrored[u as usize].push(v);
            mirrored[v as usize].push(u);
        }
    }
    for l in &mut mirrored {
        l.sort_unstable();
        l.dedup();
    }
    BMatching { partners: mirrored }
}

wire_codec! {
    /// Wire messages of the distributed b-suitor program. Both carry
    /// *global* vertex ids; weights are never shipped because cross
    /// edges (and their weights) are replicated on both endpoint ranks.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ExtMsg {
        /// `from` proposes the edge `(from, to)`; `to` is owned by the
        /// receiving rank.
        0 => Propose { from: VertexId, to: VertexId },
        /// `from`'s proposal to `to` was refused on arrival or later
        /// displaced by a stronger suitor; `from`'s owner re-proposes.
        1 => Reject { from: VertexId, to: VertexId },
    }
}

wire_codec! {
    /// Snapshot records of [`DistBSuitor`]: capacities, cursors, and the
    /// suitor heaps. Heap entries are emitted in the heap's internal
    /// array order; restoring re-heapifies an already-valid heap array,
    /// which performs no swaps — the rebuilt heap is layout-identical,
    /// so even tie-broken displacement order resumes bit-identically.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub enum BSuitorSnap {
        /// Per-owned-vertex counters, emitted for every `v` in
        /// `0..n_local` order (stream position = vertex).
        0 => Vertex {
            /// Outstanding proposals made by this vertex.
            made: u64,
            /// Next slot in the weight-sorted adjacency to consider.
            ptr: u64,
            /// Capacity `b(v)` (carried so restore needs no capacity fn).
            cap: u64,
        },
        /// One accepted proposal held by owned vertex `u`, in heap-array
        /// order.
        1 => Suitor {
            /// Holding vertex (local index).
            u: u32,
            /// Proposal weight.
            weight: f64,
            /// Proposer (global id).
            proposer: VertexId,
        },
        /// An entry of the work stack, bottom-to-top.
        2 => Stacked {
            /// Owned vertex (local index) that still owes proposals.
            v: u32,
        },
    }
}

/// Distributed b-suitor (Khan–Pothen et al.): each rank runs the
/// pointer-based suitor scan over its owned vertices, proposing
/// optimistically across rank boundaries. A remote proposal is judged by
/// the owner of the target: admissible proposals are accepted (possibly
/// displacing the weakest current suitor, who is notified and
/// re-proposes), inadmissible ones are rejected back to the proposer.
///
/// Because suitor heaps only ever *strengthen*, rejection is permanent
/// and the per-vertex pointer never revisits an earlier neighbor — the
/// algorithm reaches the unique locally-dominant b-matching regardless
/// of message schedule (for distinct edge weights), so the result equals
/// sequential [`b_suitor`] on the same graph.
///
/// Termination is by engine quiescence: the program is always
/// [`Status::Idle`]; the run ends when no Propose/Reject is in flight.
pub struct DistBSuitor {
    dg: DistGraph,
    halo: HaloView,
    /// Weight-sorted adjacency (descending weight, ascending global id)
    /// — the suitor scan order, identical on every rank.
    sxadj: Vec<usize>,
    sadj: Vec<u32>,
    sweights: Vec<Weight>,
    /// Capacity per owned vertex.
    b: Vec<usize>,
    /// Accepted proposals held by each owned vertex (weakest on top).
    suitors: Vec<BinaryHeap<Prop>>,
    /// Outstanding (sent or accepted) proposals per owned vertex.
    made: Vec<usize>,
    /// Next slot in `sadj` each owned vertex will consider.
    ptr: Vec<usize>,
    /// Owned vertices that still owe proposals.
    stack: Vec<u32>,
}

impl DistBSuitor {
    /// Builds the rank program. `b` takes *global* vertex ids so every
    /// rank sees the same capacity function.
    pub fn new(dg: DistGraph, b: impl Fn(VertexId) -> usize) -> Self {
        let halo = HaloView::build(&dg);
        let (sxadj, sadj, sweights) = weight_sorted_csr(&dg);
        let n = dg.n_local;
        let caps: Vec<usize> = (0..n).map(|v| b(dg.global_ids[v])).collect();
        let ptr = sxadj[..n].to_vec();
        // Pop order: boundary ascending first (cross-rank proposals
        // launch early, overlapping communication with interior work),
        // then interior ascending. On one rank everything is interior,
        // so the scan order matches sequential `b_suitor` exactly.
        let stack: Vec<u32> = halo
            .interior
            .iter()
            .rev()
            .chain(halo.boundary.iter().rev())
            .copied()
            .collect();
        DistBSuitor {
            dg,
            halo,
            sxadj,
            sadj,
            sweights,
            b: caps,
            suitors: (0..n).map(|_| BinaryHeap::new()).collect(),
            made: vec![0; n],
            ptr,
            stack,
        }
    }

    /// The halo view backing this program (boundary/interior split).
    pub fn halo(&self) -> &HaloView {
        &self.halo
    }

    /// Accepted proposals at this rank as `(target, proposer)` global-id
    /// pairs — the rank's share of the matching at quiescence.
    pub fn held_proposals(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.suitors.iter().enumerate().flat_map(move |(ul, heap)| {
            let ug = self.dg.global_ids[ul];
            heap.iter().map(move |p| (ug, p.1))
        })
    }

    /// Would a proposal `(w, proposer)` enter owned vertex `u`'s heap?
    fn admissible(&self, u: u32, w: Weight, proposer: VertexId) -> bool {
        let heap = &self.suitors[u as usize];
        heap.len() < self.b[u as usize]
            || heap.peek().is_some_and(|weakest| {
                (w, std::cmp::Reverse(proposer)) > (weakest.0, std::cmp::Reverse(weakest.1))
            })
    }

    /// Accepts an admissible proposal into owned vertex `u`'s heap,
    /// displacing (and notifying) the weakest suitor if over capacity.
    fn accept(&mut self, u: u32, proposer: VertexId, w: Weight, ctx: &mut RankCtx<ExtMsg>) {
        self.suitors[u as usize].push(Prop(w, proposer));
        if self.suitors[u as usize].len() > self.b[u as usize] {
            if let Some(Prop(_, displaced)) = self.suitors[u as usize].pop() {
                let to = self.dg.global_ids[u as usize];
                self.notify_displaced(displaced, to, ctx);
            }
        }
    }

    /// Routes a displacement: local proposers restack, remote proposers
    /// get a Reject to their owner.
    fn notify_displaced(&mut self, from: VertexId, to: VertexId, ctx: &mut RankCtx<ExtMsg>) {
        let Some(&fl) = self.dg.global_to_local.get(&from) else {
            return; // unknown proposer: drop (cannot happen in a valid run)
        };
        if self.dg.is_ghost(fl) {
            ctx.send(self.dg.owner(fl), &ExtMsg::Reject { from, to });
        } else {
            self.made[fl as usize] = self.made[fl as usize].saturating_sub(1);
            self.stack.push(fl);
        }
    }

    /// Advances owned vertex `v`'s pointer until its proposal budget is
    /// full or its neighbor list is exhausted.
    fn advance(&mut self, v: u32, ctx: &mut RankCtx<ExtMsg>) {
        while self.made[v as usize] < self.b[v as usize] {
            let i = self.ptr[v as usize];
            if i >= self.sxadj[v as usize + 1] {
                break;
            }
            self.ptr[v as usize] = i + 1;
            let u = self.sadj[i];
            let w = self.sweights[i];
            ctx.charge(1);
            if self.dg.is_ghost(u) {
                // Optimistic: count it made now; a Reject refunds it.
                self.made[v as usize] += 1;
                let msg = ExtMsg::Propose {
                    from: self.dg.global_ids[v as usize],
                    to: self.dg.global_ids[u as usize],
                };
                ctx.send(self.dg.owner(u), &msg);
            } else {
                let proposer = self.dg.global_ids[v as usize];
                if self.admissible(u, w, proposer) {
                    self.made[v as usize] += 1;
                    self.accept(u, proposer, w, ctx);
                }
                // Inadmissible targets stay inadmissible (heaps only
                // strengthen): skip forever.
            }
        }
    }

    fn drain(&mut self, ctx: &mut RankCtx<ExtMsg>) {
        while let Some(v) = self.stack.pop() {
            self.advance(v, ctx);
        }
    }

    fn handle(&mut self, msg: ExtMsg, ctx: &mut RankCtx<ExtMsg>) {
        match msg {
            ExtMsg::Propose { from, to } => {
                ctx.charge(1);
                let Some(&tl) = self.dg.global_to_local.get(&to) else {
                    return; // not ours: drop (cannot happen in a valid run)
                };
                // The cross edge is replicated locally: recover its weight
                // from `to`'s row.
                let w = self
                    .dg
                    .neighbors_weighted(tl)
                    .find(|&(u, _)| self.dg.global_ids[u as usize] == from)
                    .map(|(_, w)| w);
                match w {
                    Some(w) if self.admissible(tl, w, from) => self.accept(tl, from, w, ctx),
                    _ => {
                        // Refused (or no such edge): bounce to the
                        // proposer's owner so it re-proposes elsewhere.
                        if let Some(&fl) = self.dg.global_to_local.get(&from) {
                            ctx.send(self.dg.owner(fl), &ExtMsg::Reject { from, to });
                        }
                    }
                }
            }
            ExtMsg::Reject { from, to: _ } => {
                ctx.charge(1);
                let Some(&fl) = self.dg.global_to_local.get(&from) else {
                    return;
                };
                self.made[fl as usize] = self.made[fl as usize].saturating_sub(1);
                self.stack.push(fl);
            }
        }
    }
}

impl RankProgram for DistBSuitor {
    type Msg = ExtMsg;
    type Snapshot = Vec<BSuitorSnap>;
    type Meta = DistGraph;

    fn snapshot(&self) -> Vec<BSuitorSnap> {
        let n = self.dg.n_local;
        let mut recs = Vec::with_capacity(n + self.stack.len());
        for v in 0..n {
            recs.push(BSuitorSnap::Vertex {
                made: self.made[v] as u64,
                ptr: self.ptr[v] as u64,
                cap: self.b[v] as u64,
            });
        }
        for (u, heap) in self.suitors.iter().enumerate() {
            // `iter()` walks the internal heap array in order.
            for p in heap.iter() {
                recs.push(BSuitorSnap::Suitor {
                    u: u as u32,
                    weight: p.0,
                    proposer: p.1,
                });
            }
        }
        for &v in &self.stack {
            recs.push(BSuitorSnap::Stacked { v });
        }
        recs
    }

    fn restore(meta: DistGraph, snap: Vec<BSuitorSnap>) -> Self {
        let mut p = DistBSuitor::new(meta, |_| 0);
        let mut heaps: Vec<Vec<Prop>> = (0..p.dg.n_local).map(|_| Vec::new()).collect();
        p.stack.clear();
        let mut next_vertex = 0usize;
        for rec in snap {
            match rec {
                BSuitorSnap::Vertex { made, ptr, cap } => {
                    let v = next_vertex;
                    next_vertex += 1;
                    p.made[v] = made as usize;
                    p.ptr[v] = ptr as usize;
                    p.b[v] = cap as usize;
                }
                BSuitorSnap::Suitor {
                    u,
                    weight,
                    proposer,
                } => heaps[u as usize].push(Prop(weight, proposer)),
                BSuitorSnap::Stacked { v } => p.stack.push(v),
            }
        }
        debug_assert_eq!(next_vertex, p.dg.n_local, "snapshot/graph mismatch");
        // `From<Vec>` heapifies; on an already-valid heap array every
        // sift is a no-op, so the restored layout is byte-identical.
        p.suitors = heaps.into_iter().map(BinaryHeap::from).collect();
        p
    }

    fn meta(&self) -> DistGraph {
        self.dg.clone()
    }

    fn on_start(&mut self, ctx: &mut RankCtx<ExtMsg>) -> Status {
        self.drain(ctx);
        Status::Idle
    }

    fn on_round(
        &mut self,
        inbox: &mut Vec<(cmg_runtime::Rank, Vec<ExtMsg>)>,
        ctx: &mut RankCtx<ExtMsg>,
    ) -> Status {
        for (_, msgs) in inbox.drain(..) {
            for m in msgs {
                self.handle(m, ctx);
            }
        }
        self.drain(ctx);
        Status::Idle
    }
}

/// Assembles the global b-matching from finished rank programs. Each
/// accepted proposal at quiescence is a matched edge; mirror both
/// endpoints and dedup, exactly as sequential [`b_suitor`] does.
pub fn assemble_b_matching(programs: &[DistBSuitor], num_vertices: usize) -> BMatching {
    let mut partners: Vec<Vec<VertexId>> = vec![Vec::new(); num_vertices];
    for p in programs {
        for (ul, heap) in p.suitors.iter().enumerate() {
            let ug = p.dg.global_ids[ul];
            for prop in heap.iter() {
                partners[ug as usize].push(prop.1);
                partners[prop.1 as usize].push(ug);
            }
        }
    }
    for l in &mut partners {
        l.sort_unstable();
        l.dedup();
    }
    BMatching { partners }
}

/// Greedy vertex-weighted matching: maximize the total *vertex* weight
/// covered. Processes vertices by decreasing weight; each unmatched vertex
/// grabs its heaviest unmatched neighbor. ½-approximation for the
/// vertex-weighted objective.
///
/// `vertex_weight[v]` must have length `n`.
pub fn vertex_weighted_greedy(g: &CsrGraph, vertex_weight: &[Weight]) -> Matching {
    assert_eq!(vertex_weight.len(), g.num_vertices());
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    order.sort_by(|&a, &b| {
        vertex_weight[b as usize]
            .total_cmp(&vertex_weight[a as usize])
            .then(a.cmp(&b))
    });
    let mut m = Matching::empty(g.num_vertices());
    for &v in &order {
        if m.is_matched(v) {
            continue;
        }
        // Heaviest unmatched neighbor by vertex weight (ties: smaller id).
        let mut best: Option<(Weight, VertexId)> = None;
        for &u in g.neighbors(v) {
            if !m.is_matched(u) {
                let w = vertex_weight[u as usize];
                let better = match best {
                    None => true,
                    Some((bw, bu)) => w > bw || (w == bw && u < bu),
                };
                if better {
                    best = Some((w, u));
                }
            }
        }
        if let Some((_, u)) = best {
            m.add(v, u);
        }
    }
    m
}

/// Total vertex weight covered by a matching.
pub fn covered_vertex_weight(m: &Matching, vertex_weight: &[Weight]) -> Weight {
    (0..m.num_vertices() as VertexId)
        .filter(|&v| m.is_matched(v))
        .map(|v| vertex_weight[v as usize])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use cmg_graph::generators::{complete, erdos_renyi, grid2d, star};
    use cmg_graph::weights::{assign_weights, WeightScheme};

    fn uniform(n: usize, m: usize, seed: u64) -> CsrGraph {
        assign_weights(
            &erdos_renyi(n, m, seed),
            WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
            seed,
        )
    }

    #[test]
    fn b1_suitor_equals_plain_suitor() {
        for seed in 0..5 {
            let g = uniform(40, 120, seed);
            let bm = b_suitor(&g, |_| 1);
            bm.validate(&g, &|_| 1).unwrap();
            let expected = seq::suitor(&g);
            assert_eq!(bm.to_matching(), expected, "seed {seed}");
        }
    }

    #[test]
    fn b2_respects_capacities_and_beats_b1_weight() {
        for seed in 0..5 {
            let g = uniform(40, 160, seed);
            let b2 = b_suitor(&g, |_| 2);
            b2.validate(&g, &|_| 2).unwrap();
            let b1 = b_suitor(&g, |_| 1);
            assert!(
                b2.weight(&g) >= b1.weight(&g) - 1e-9,
                "seed {seed}: b=2 weight {} < b=1 weight {}",
                b2.weight(&g),
                b1.weight(&g)
            );
        }
    }

    #[test]
    fn heterogeneous_capacities() {
        let g = uniform(30, 90, 7);
        let b = |v: VertexId| 1 + (v as usize % 3);
        let bm = b_suitor(&g, b);
        bm.validate(&g, &b).unwrap();
    }

    #[test]
    fn star_with_b_on_hub() {
        // Hub with b=3 can take its three heaviest leaves.
        let g = assign_weights(&star(6), WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 2);
        let bm = b_suitor(&g, |v| if v == 0 { 3 } else { 1 });
        bm.validate(&g, &|v| if v == 0 { 3 } else { 1 }).unwrap();
        assert_eq!(bm.partners(0).len(), 3);
        // They are the heaviest three.
        let mut ws: Vec<Weight> = g.neighbor_weights(0).to_vec();
        ws.sort_by(|a, b| b.total_cmp(a));
        let expect: Weight = ws[..3].iter().sum();
        assert!((bm.weight(&g) - expect).abs() < 1e-9);
    }

    #[test]
    fn b_suitor_on_complete_graph_is_half_approx_of_trivial_bound() {
        let g = assign_weights(&complete(8), WeightScheme::Uniform { lo: 0.5, hi: 1.0 }, 3);
        let bm = b_suitor(&g, |_| 2);
        bm.validate(&g, &|_| 2).unwrap();
        // With b=2 and 8 vertices, at most 8 edges can be matched.
        assert!(bm.num_edges() <= 8);
        assert!(bm.num_edges() >= 6);
    }

    #[test]
    fn zero_capacity_vertices_stay_unmatched() {
        let g = uniform(10, 30, 4);
        let bm = b_suitor(&g, |v| if v < 5 { 0 } else { 1 });
        bm.validate(&g, &|v| if v < 5 { 0 } else { 1 }).unwrap();
        for v in 0..5 {
            assert!(bm.partners(v).is_empty());
        }
    }

    fn run_dist_b(
        g: &CsrGraph,
        partition: &cmg_partition::Partition,
        b: impl Fn(VertexId) -> usize + Copy,
    ) -> BMatching {
        use cmg_runtime::{CostModel, EngineConfig, SimEngine};
        let parts = DistGraph::build_all(g, partition);
        let programs: Vec<DistBSuitor> = parts
            .into_iter()
            .map(|dg| DistBSuitor::new(dg, b))
            .collect();
        let cfg = EngineConfig {
            cost: CostModel::compute_only(),
            max_rounds: 100_000,
            ..Default::default()
        };
        let result = SimEngine::new(programs, cfg).run();
        assert!(
            !result.hit_round_cap,
            "distributed b-suitor did not quiesce"
        );
        assemble_b_matching(&result.programs, g.num_vertices())
    }

    fn assert_same_b_matching(a: &BMatching, b: &BMatching, n: usize, what: &str) {
        for v in 0..n as VertexId {
            assert_eq!(a.partners(v), b.partners(v), "{what}: vertex {v} differs");
        }
    }

    #[test]
    fn dist_b_suitor_matches_sequential_across_partitions() {
        use cmg_partition::simple::{block_partition, hash_partition};
        for seed in 0..4 {
            let g = uniform(48, 160, seed);
            for b in [1usize, 2, 3] {
                let expected = b_suitor(&g, |_| b);
                for ranks in [1u32, 2, 4] {
                    let bp = block_partition(48, ranks);
                    let hp = hash_partition(48, ranks, seed);
                    for (p, name) in [(bp.clone(), "block"), (hp.clone(), "hash")] {
                        let got = run_dist_b(&g, &p, |_| b);
                        got.validate(&g, &|_| b).unwrap();
                        assert_same_b_matching(
                            &got,
                            &expected,
                            48,
                            &format!("seed {seed} b {b} ranks {ranks} {name}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dist_b_suitor_heterogeneous_capacities() {
        use cmg_partition::simple::block_partition;
        let g = uniform(30, 90, 7);
        let b = |v: VertexId| 1 + (v as usize % 3);
        let expected = b_suitor(&g, b);
        for ranks in [2u32, 3] {
            let got = run_dist_b(&g, &block_partition(30, ranks), b);
            got.validate(&g, &b).unwrap();
            assert_same_b_matching(&got, &expected, 30, &format!("ranks {ranks}"));
        }
    }

    #[test]
    fn dist_b_suitor_unweighted_ties_match_sequential() {
        use cmg_partition::simple::block_partition;
        // Unit weights everywhere: every comparison is a tie, so this
        // exercises the id tie-breaks. The edge order (weight desc,
        // smaller endpoint asc) is still strict and globally consistent,
        // so the distributed run must reach the same fixpoint as the
        // sequential scan.
        let g = grid2d(7, 7);
        let got = run_dist_b(&g, &block_partition(49, 4), |_| 2);
        got.validate(&g, &|_| 2).unwrap();
        assert!(got.num_edges() > 0);
        let expected = b_suitor(&g, |_| 2);
        assert_same_b_matching(&got, &expected, 49, "unweighted grid");
    }

    #[test]
    fn dist_b_suitor_single_rank_uses_no_messages() {
        use cmg_runtime::{CostModel, EngineConfig, SimEngine};
        let g = uniform(20, 60, 1);
        let parts = DistGraph::build_all(&g, &cmg_partition::Partition::single(20));
        let programs: Vec<DistBSuitor> = parts
            .into_iter()
            .map(|dg| DistBSuitor::new(dg, |_| 1))
            .collect();
        assert!(programs[0].halo().boundary.is_empty());
        let cfg = EngineConfig {
            cost: CostModel::compute_only(),
            max_rounds: 100,
            ..Default::default()
        };
        let result = SimEngine::new(programs, cfg).run();
        let got = assemble_b_matching(&result.programs, 20);
        let expected = b_suitor(&g, |_| 1);
        assert_same_b_matching(&got, &expected, 20, "single rank");
    }

    #[test]
    fn ext_msg_codec_round_trip() {
        use cmg_runtime::WireMessage;
        let msgs = [
            ExtMsg::Propose { from: 3, to: 9 },
            ExtMsg::Reject { from: 9, to: 3 },
        ];
        let mut buf = bytes::BytesMut::new();
        for m in &msgs {
            m.encode(&mut buf);
            assert_eq!(m.encoded_len(), 9);
        }
        let decoded: Vec<ExtMsg> = cmg_runtime::message::decode_all(buf.freeze()).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn vertex_weighted_greedy_covers_heavy_vertices() {
        // Path a-b-c with vertex weights 10, 1, 10: matching must cover
        // both heavy endpoints? Impossible (they're not adjacent) — greedy
        // picks (a,b), leaving c; total covered = 11.
        let g = grid2d(1, 3);
        let vw = [10.0, 1.0, 10.0];
        let m = vertex_weighted_greedy(&g, &vw);
        m.validate(&g).unwrap();
        assert_eq!(covered_vertex_weight(&m, &vw), 11.0);
    }

    #[test]
    fn vertex_weighted_greedy_is_maximal_and_valid() {
        for seed in 0..5 {
            let g = erdos_renyi(50, 150, seed);
            let vw: Vec<Weight> = (0..50).map(|v| ((v * 7919) % 100) as f64).collect();
            let m = vertex_weighted_greedy(&g, &vw);
            m.validate(&g).unwrap();
            assert!(m.is_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn equal_vertex_weights_reduce_to_cardinality_greedy() {
        let g = erdos_renyi(30, 90, 2);
        let vw = vec![1.0; 30];
        let m = vertex_weighted_greedy(&g, &vw);
        assert!(m.is_maximal(&g));
        assert_eq!(covered_vertex_weight(&m, &vw), 2.0 * m.cardinality() as f64);
    }
}
