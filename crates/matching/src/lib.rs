//! # cmg-matching
//!
//! Edge-weighted matching algorithms: the paper's distributed-memory
//! ½-approximation algorithm (§3) plus the sequential and exact algorithms
//! it is measured against.
//!
//! * [`seq`]: sequential ½-approximation algorithms — greedy-by-weight,
//!   the locally-dominant / candidate-mate algorithm (Preis; Hoepman;
//!   Manne–Bisseling) that the parallel algorithm is built on, the
//!   path-growing algorithm, and the suitor algorithm;
//! * [`exact`]: exact maximum-weight matching — successive shortest paths
//!   for bipartite graphs (the Table 1.1 optimum reference) and a bitmask
//!   brute force for tiny general graphs (property-test oracle);
//! * [`dist`]: the distributed candidate-mate algorithm with
//!   `REQUEST`/`SUCCEEDED`/`FAILED` messages and aggressive message
//!   bundling, as a [`cmg_runtime::RankProgram`];
//! * [`ext`]: b-matching (sequential and distributed b-suitor) and
//!   vertex-weighted extensions.

pub mod dist;
pub mod exact;
pub mod ext;
pub mod matching;
pub mod repair;
pub mod seq;

pub use dist::{assemble_matching, DistMatching, MatchMsg, MatchSnap};
pub use ext::{assemble_b_matching, BMatching, BSuitorSnap, DistBSuitor, ExtMsg};
pub use matching::Matching;
pub use repair::{invalidate, repair_frontier, MatchRetained};
