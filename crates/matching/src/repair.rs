//! Warm-start repair for the distributed matching (cmg-serve's kernel).
//!
//! The ½-approximation matching is exactly the set of locally dominant
//! edges, and local dominance is a *local* certificate: every non-matched
//! edge must be dominated by a matched edge at one of its endpoints.
//! A graph mutation can therefore only invalidate matching decisions
//! reachable from the mutation through a chain of broken dominations —
//! Birn et al.'s local-max observation (arXiv:1302.4587). Repair is:
//!
//! 1. **Invalidate** ([`invalidate`]): starting from the mutated edges,
//!    unmatch every pair whose dominance certificate no longer holds and
//!    cascade — a freed vertex's edges may now dominate its neighbors'
//!    matched edges, freeing those too — until a fixpoint. Previously
//!    unmatchable vertices adjacent to the freed region are reactivated
//!    (they may be matchable now).
//! 2. **Reseed** ([`DistMatching`]'s
//!    [`WarmStart`](cmg_runtime::WarmStart) impl): rebuild each rank's
//!    program with the retained pairs pre-`Matched`, non-active
//!    unmatched vertices pre-`Failed`, and only the active frontier
//!    `Free`.
//! 3. **Rerun** the ordinary engine: only the frontier does protocol
//!    work, and retained decisions are never revisited.
//!
//! With distinct weights the locally dominant matching is the unique
//! greedy matching, so repair reproduces the from-scratch result
//! exactly; with ties it produces *a* valid locally-dominant matching
//! (the documented serve-layer relaxation, DESIGN.md §13).

use crate::dist::DistMatching;
use cmg_graph::{Mutation, MutationBatch, NeighborView, VertexId, Weight, NO_VERTEX};
use std::collections::VecDeque;

/// The globally consistent retained state a warm matching run seeds
/// from: produced by [`invalidate`], consumed by every rank's
/// [`WarmStart::reseed`](cmg_runtime::WarmStart::reseed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchRetained {
    /// Post-invalidation global mate vector (`NO_VERTEX` = unmatched).
    /// Surviving pairs are retained verbatim by the warm run.
    pub mate: Vec<VertexId>,
    /// Vertices the warm run must re-decide. Unmatched vertices outside
    /// this set are known-unmatchable and stay that way.
    pub active: Vec<bool>,
}

impl MatchRetained {
    /// Number of vertices the warm run re-decides (the matching half of
    /// the serve dirtiness metric).
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// Weight of the matched edge at `y`, or `None` if `y` is unmatched
/// (or its matched edge vanished from the graph, which the caller
/// handles by unmatching first).
fn matched_weight(
    g: &(impl NeighborView + ?Sized),
    mate: &[VertexId],
    y: VertexId,
) -> Option<Weight> {
    let m = mate[y as usize];
    if m == NO_VERTEX {
        return None;
    }
    g.edge_weight(y, m)
}

/// Computes the invalidation set of `batch` against the *new* graph
/// `g_new` (mutations already applied) and the old global mate vector.
///
/// `g_new` is any [`NeighborView`] — a packed [`cmg_graph::CsrGraph`]
/// or the serving layer's resident [`cmg_graph::MutableGraph`], which
/// is what keeps invalidation O(frontier) end to end (no CSR repack
/// just to ask adjacency questions).
///
/// Returns the retained state: surviving pairs plus the active frontier
/// the warm run re-decides. Conservative by construction — a pair is
/// retained only if no edge of the new graph can dominate it through
/// the freed region — so the reseeded run's fixpoint passes the
/// ½-approximation certificate on `g_new`.
pub fn invalidate(
    g_new: &(impl NeighborView + ?Sized),
    old_mate: &[VertexId],
    batch: &MutationBatch,
) -> MatchRetained {
    let n = g_new.num_vertices();
    debug_assert_eq!(n, old_mate.len());
    let mut mate = old_mate.to_vec();
    let mut active = vec![false; n];
    // Queue of vertices whose edges must be re-examined for broken
    // dominations: freed vertices and undominated-insert endpoints.
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    let unmatch = |x: VertexId,
                   mate: &mut Vec<VertexId>,
                   active: &mut Vec<bool>,
                   queue: &mut VecDeque<VertexId>| {
        let y = mate[x as usize];
        if y == NO_VERTEX {
            return;
        }
        mate[x as usize] = NO_VERTEX;
        mate[y as usize] = NO_VERTEX;
        for v in [x, y] {
            if !active[v as usize] {
                active[v as usize] = true;
            }
            queue.push_back(v);
        }
    };

    // Seed from the mutations themselves.
    for op in &batch.ops {
        match *op {
            Mutation::Delete { u, v } => {
                if mate[u as usize] == v {
                    unmatch(u, &mut mate, &mut active, &mut queue);
                }
            }
            Mutation::Insert { u, v, w } | Mutation::Reweight { u, v, w } => {
                if mate[u as usize] == v {
                    // A matched edge's weight changed: re-derive the
                    // pair under the new weight (it usually re-matches).
                    unmatch(u, &mut mate, &mut active, &mut queue);
                } else {
                    let dominated = matched_weight(g_new, &mate, u).is_some_and(|mw| mw >= w)
                        || matched_weight(g_new, &mate, v).is_some_and(|mw| mw >= w);
                    if !dominated && g_new.has_edge(u, v) {
                        // The new edge dominates both endpoints: both
                        // incident pairs (if any) are invalid, and both
                        // endpoints must re-decide.
                        unmatch(u, &mut mate, &mut active, &mut queue);
                        unmatch(v, &mut mate, &mut active, &mut queue);
                        for x in [u, v] {
                            if !active[x as usize] {
                                active[x as usize] = true;
                                queue.push_back(x);
                            }
                        }
                    }
                }
            }
        }
    }

    // Cascade: a freed vertex's edges may dominate neighboring pairs
    // (they were dominated by the freed vertex's own matched edge
    // before), and its unmatchable neighbors become matchable again.
    let mut hood: Vec<(VertexId, Weight)> = Vec::new();
    while let Some(x) = queue.pop_front() {
        // `x` may have been re-queued and then re-matched; freed
        // vertices are never re-matched inside this pass, so mate[x]
        // is NO_VERTEX here — but guard anyway for insert endpoints.
        hood.clear();
        g_new.for_each_neighbor(x, &mut |y, w| hood.push((y, w)));
        for &(y, w) in &hood {
            match matched_weight(g_new, &mate, y) {
                Some(mw) if w > mw => unmatch(y, &mut mate, &mut active, &mut queue),
                Some(_) => {}
                None => {
                    // Unmatched neighbor of the freed region: it may
                    // now match (with x or deeper in the frontier).
                    // No cascade push needed — an old unmatched vertex
                    // dominates nothing (its edges were all dominated
                    // from the other side, and still are unless that
                    // side was freed, which queues its own pass).
                    active[y as usize] = true;
                }
            }
        }
    }

    MatchRetained { mate, active }
}

/// Finishes a repair **sequentially**: greedy matching on the subgraph
/// induced by the active frontier, in O(frontier · degree + F log F).
///
/// This is the serving layer's hot path. A resident service repairing a
/// handful of vertices per batch cannot afford to stand up the
/// distributed engine (partition build + program construction are
/// O(V + E)); it runs this kernel in-process instead. The distributed
/// warm path ([`DistMatching`]'s `WarmStart` impl) computes the same
/// fixpoint and remains the multi-rank story.
///
/// Equivalence argument: after [`invalidate`], active vertices are
/// exactly the warm run's `Free` set and every other vertex is frozen
/// (`Matched` with its retained mate, or `Failed`). The warm engine's
/// greedy protocol only forms pairs between `Free` vertices, and greedy
/// matching restricted to the frontier-induced subgraph is its unique
/// fixpoint when weights are distinct. Ties fall to the deterministic
/// `(weight, u, v)` order here — the same documented relaxation the
/// serve layer already carries for coloring palettes.
///
/// Returns the completed global mate vector.
pub fn repair_frontier(
    g: &(impl NeighborView + ?Sized),
    retained: &MatchRetained,
) -> Vec<VertexId> {
    let mut mate = retained.mate.clone();
    // Frontier edges: both endpoints active (active ⟹ unmatched, an
    // `invalidate` invariant — frozen vertices never re-match).
    let mut edges: Vec<(Weight, VertexId, VertexId)> = Vec::new();
    for (u, &is_active) in retained.active.iter().enumerate() {
        if !is_active {
            continue;
        }
        debug_assert_eq!(mate[u], NO_VERTEX, "active vertex {u} still matched");
        let u = u as VertexId;
        g.for_each_neighbor(u, &mut |v, w| {
            if u < v && retained.active[v as usize] {
                edges.push((w, u, v));
            }
        });
    }
    edges.sort_unstable_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });
    for (_, u, v) in edges {
        if mate[u as usize] == NO_VERTEX && mate[v as usize] == NO_VERTEX {
            mate[u as usize] = v;
            mate[v as usize] = u;
        }
    }
    mate
}

impl cmg_runtime::WarmStart for DistMatching {
    type Retained = MatchRetained;

    /// Reseeds one rank from the retained global view: retained pairs
    /// come up `Matched` (owned *and* ghost, so cross-rank state is
    /// consistent without catch-up messages), inactive unmatched
    /// vertices come up `Failed`, and only the active frontier is
    /// `Free`. The ordinary `on_start`/`on_round` protocol then runs
    /// greedy matching restricted to the frontier.
    fn reseed(meta: <Self as cmg_runtime::RankProgram>::Meta, retained: &MatchRetained) -> Self {
        DistMatching::reseed_from(meta, &retained.mate, &retained.active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::assemble_matching;
    use crate::seq;
    use crate::Matching;
    use cmg_graph::generators::{erdos_renyi, grid2d};
    use cmg_graph::weights::{assign_weights, WeightScheme};
    use cmg_graph::{CsrGraph, MutableGraph};
    use cmg_partition::simple::hash_partition;
    use cmg_partition::DistGraph;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine, WarmStart};

    fn warm_run(
        g: &CsrGraph,
        parts: u32,
        seed_state: &MatchRetained,
        pseed: u64,
    ) -> (Matching, u64) {
        let p = hash_partition(g.num_vertices(), parts, pseed);
        let dgs = DistGraph::build_all(g, &p);
        let programs: Vec<DistMatching> = dgs
            .into_iter()
            .map(|dg| DistMatching::reseed(dg, seed_state))
            .collect();
        let cfg = EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        };
        let result = SimEngine::new(programs, cfg).run();
        assert!(!result.hit_round_cap, "warm matching did not quiesce");
        for prog in &result.programs {
            assert!(prog.is_resolved(), "warm run left a vertex undecided");
        }
        (
            assemble_matching(&result.programs, g.num_vertices()),
            result.stats.rounds,
        )
    }

    /// Deterministic mutation stream: repair after every batch must
    /// reproduce the sequential greedy matching on the current graph
    /// exactly (weights are distinct with probability 1).
    #[test]
    fn repair_equals_from_scratch_across_mutation_stream() {
        for seed in 0..4u64 {
            let g0 = assign_weights(
                &erdos_renyi(60, 150, seed),
                WeightScheme::Uniform { lo: 0.1, hi: 1.0 },
                seed,
            );
            let mut mg = MutableGraph::from_csr(&g0);
            let mut mate: Vec<VertexId> = seq::local_dominant(&g0).mates().to_vec();
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for step in 0..12 {
                let mut batch = MutationBatch::new();
                for _ in 0..3 {
                    let u = (rng() % 60) as VertexId;
                    let v = (rng() % 60) as VertexId;
                    if u == v {
                        continue;
                    }
                    match rng() % 3 {
                        0 => batch.insert(u, v, (rng() % 10_000) as f64 / 10_000.0 + 0.1),
                        1 => batch.delete(u, v),
                        _ => batch.reweight(u, v, (rng() % 10_000) as f64 / 10_000.0 + 0.1),
                    };
                }
                mg.apply(&batch).unwrap();
                let g = mg.rebuild();
                let retained = invalidate(&g, &mate, &batch);
                let (m, _) = warm_run(&g, 3, &retained, seed);
                m.validate(&g).unwrap();
                let expected = seq::local_dominant(&g);
                assert_eq!(
                    m, expected,
                    "seed {seed} step {step}: repaired matching != from-scratch"
                );
                mate = m.mates().to_vec();
            }
        }
    }

    /// A mutation far from most of the graph must leave the rest of the
    /// matching untouched and re-decide only a local frontier.
    #[test]
    fn invalidation_is_local() {
        let g0 = assign_weights(
            &grid2d(20, 20),
            WeightScheme::Uniform { lo: 0.1, hi: 1.0 },
            9,
        );
        let mate: Vec<VertexId> = seq::local_dominant(&g0).mates().to_vec();
        let mut mg = MutableGraph::from_csr(&g0);
        let mut batch = MutationBatch::new();
        batch.delete(0, 1);
        mg.apply(&batch).unwrap();
        let g = mg.rebuild();
        let retained = invalidate(&g, &mate, &batch);
        assert!(
            retained.active_count() <= 32,
            "deleting one grid edge activated {} of 400 vertices",
            retained.active_count()
        );
        let survivors = retained.mate.iter().filter(|&&m| m != NO_VERTEX).count();
        assert!(
            survivors > 300,
            "only {survivors} matched vertices retained"
        );
    }

    /// The sequential frontier finisher, run against the *mutable*
    /// graph directly (no CSR rebuild anywhere on the path), matches
    /// the from-scratch greedy matching across a mutation stream —
    /// i.e. it computes the same fixpoint as the distributed warm run.
    #[test]
    fn sequential_frontier_repair_equals_from_scratch() {
        for seed in 0..4u64 {
            let g0 = assign_weights(
                &erdos_renyi(60, 150, seed + 40),
                WeightScheme::Uniform { lo: 0.1, hi: 1.0 },
                seed,
            );
            let mut mg = MutableGraph::from_csr(&g0);
            let mut mate: Vec<VertexId> = seq::local_dominant(&g0).mates().to_vec();
            let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(11);
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for step in 0..12 {
                let mut batch = MutationBatch::new();
                for _ in 0..3 {
                    let u = (rng() % 60) as VertexId;
                    let v = (rng() % 60) as VertexId;
                    if u == v {
                        continue;
                    }
                    match rng() % 3 {
                        0 => batch.insert(u, v, (rng() % 10_000) as f64 / 10_000.0 + 0.1),
                        1 => batch.delete(u, v),
                        _ => batch.reweight(u, v, (rng() % 10_000) as f64 / 10_000.0 + 0.1),
                    };
                }
                mg.apply(&batch).unwrap();
                let retained = invalidate(&mg, &mate, &batch);
                mate = repair_frontier(&mg, &retained);
                let g = mg.rebuild();
                let m = Matching::from_mates(mate.clone());
                m.validate(&g).unwrap();
                assert_eq!(
                    m,
                    seq::local_dominant(&g),
                    "seed {seed} step {step}: sequential repair != from-scratch"
                );
            }
        }
    }

    /// An empty batch invalidates nothing and the warm run terminates
    /// immediately with the retained matching.
    #[test]
    fn noop_batch_retains_everything() {
        let g = assign_weights(&grid2d(8, 8), WeightScheme::Uniform { lo: 0.1, hi: 1.0 }, 2);
        let mate: Vec<VertexId> = seq::local_dominant(&g).mates().to_vec();
        let retained = invalidate(&g, &mate, &MutationBatch::new());
        assert_eq!(retained.active_count(), 0);
        let (m, rounds) = warm_run(&g, 4, &retained, 5);
        assert_eq!(m.mates(), &mate[..]);
        assert!(rounds <= 1, "no-op repair ran {rounds} rounds");
    }
}
