//! The distributed ½-approximation matching algorithm (§3 of the paper).
//!
//! Each rank runs [`DistMatching`] over its piece of the distributed graph.
//! The algorithm maintains, per vertex, a *candidate mate* — the heaviest
//! still-available neighbor — and matches an edge exactly when the two
//! endpoints point at each other (a locally dominant edge). Three message
//! types flow across cross edges:
//!
//! * `REQUEST` — "my candidate mate is you" (a matching proposal);
//! * `SUCCEEDED` — "I matched elsewhere; stop considering me";
//! * `FAILED` — "I can never be matched; stop considering me".
//!
//! The paper's structure is preserved: an **inner loop** (the local queue)
//! processes interior consequences of every event without communication;
//! the **outer loop** (engine rounds) exchanges bundled messages for the
//! boundary vertices. At least two and at most three messages cross any
//! cross edge, but bundling packs all same-destination messages of a round
//! into one wire packet.

use crate::Matching;
use cmg_graph::{VertexId, Weight, NO_VERTEX};
use cmg_partition::{weight_sorted_csr, DistGraph, HaloView};
use cmg_runtime::{wire_codec, Rank, RankCtx, RankProgram, Status};
use std::collections::VecDeque;

/// Local-index sentinel.
const NONE: u32 = u32::MAX;

/// Per-round message counters feeding [`cmg_obs::Event::MatchRound`].
#[derive(Clone, Copy, Default, Debug)]
struct RoundCounts {
    requests: u64,
    succeeded: u64,
    failed: u64,
}

/// Per-vertex availability from this rank's point of view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VState {
    /// Still available for matching.
    Free,
    /// Matched (to anyone).
    Matched,
    /// Can never be matched (all neighbors taken).
    Failed,
}

impl VState {
    fn to_u8(self) -> u8 {
        match self {
            VState::Free => 0,
            VState::Matched => 1,
            VState::Failed => 2,
        }
    }

    fn from_u8(b: u8) -> VState {
        match b {
            1 => VState::Matched,
            2 => VState::Failed,
            _ => VState::Free,
        }
    }
}

wire_codec! {
    /// The three wire messages of §3.2, each carrying the global ids of the
    /// edge endpoints (`from` = sender's vertex, `to` = addressee's vertex).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum MatchMsg {
        /// Matching proposal across edge `(from, to)`.
        0 => Request {
            /// Proposing vertex (sender side).
            from: VertexId,
            /// Proposed-to vertex (receiver side).
            to: VertexId,
        },
        /// `from` has been matched and is no longer available.
        1 => Succeeded {
            /// Newly matched vertex (sender side).
            from: VertexId,
            /// Neighbor being informed (receiver side).
            to: VertexId,
        },
        /// `from` cannot be matched at all.
        2 => Failed {
            /// Failed vertex (sender side).
            from: VertexId,
            /// Neighbor being informed (receiver side).
            to: VertexId,
        },
    }
}

wire_codec! {
    /// Snapshot records of [`DistMatching`]: the algorithm state minus
    /// everything [`DistMatching::new`] rebuilds from the graph (the
    /// weight-sorted adjacency and the halo view). One `Vertex` record
    /// per owned vertex in local-index order, then sparse records for
    /// non-default ghost states, pending proposals, queued indices, and
    /// the round's message tallies.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum MatchSnap {
        /// Per-owned-vertex state, emitted for every `v` in `0..n_local`
        /// order (the record's position in the stream is the vertex).
        0 => Vertex {
            /// Candidate-mate cursor into the weight-sorted adjacency.
            ptr: u64,
            /// Availability ([`VState`] as `u8`).
            state: u8,
            /// Mate global id (`NO_VERTEX` while unmatched).
            mate: VertexId,
            /// Candidate mate local index (`NONE` if exhausted).
            candidate: u32,
        },
        /// A ghost whose availability is no longer `Free`.
        1 => Ghost {
            /// Ghost local index.
            idx: u32,
            /// Availability ([`VState`] as `u8`).
            state: u8,
        },
        /// A pending remote proposal in `r_set[v]`, in stored order.
        2 => Proposal {
            /// Proposed-to owned vertex (local index).
            v: u32,
            /// Proposing requester (local index of the ghost).
            requester: u32,
        },
        /// An entry of the inner-loop queue, in queue order.
        3 => Queued {
            /// Queued local index.
            idx: u32,
        },
        /// The round's message tallies (observability counters).
        4 => Counts {
            /// REQUESTs sent so far this round.
            requests: u64,
            /// SUCCEEDEDs sent so far this round.
            succeeded: u64,
            /// FAILEDs sent so far this round.
            failed: u64,
        },
    }
}

/// One rank's state of the distributed matching algorithm.
pub struct DistMatching {
    dg: DistGraph,
    /// Weight-sorted adjacency (descending weight, ascending global id —
    /// the smallest-label tie-break) over owned vertices.
    sxadj: Vec<usize>,
    sadj: Vec<u32>,
    /// Cursor into `sadj` per owned vertex: the candidate-mate pointer.
    ptr: Vec<usize>,
    /// Availability per local index (owned + ghost).
    state: Vec<VState>,
    /// Mate (global id) per owned vertex; `NO_VERTEX` while unmatched.
    mate: Vec<VertexId>,
    /// Candidate mate (local index) per owned vertex; `NONE` if exhausted.
    candidate: Vec<u32>,
    /// Pending remote proposals per owned vertex (requester local idxs).
    r_set: Vec<Vec<u32>>,
    /// Halo structure: the ghost reverse cross-adjacency lives here.
    halo: HaloView,
    /// Inner-loop queue of newly unavailable local indices.
    queue: VecDeque<u32>,
    /// Messages sent this round, by type (observability only).
    counts: RoundCounts,
}

impl DistMatching {
    /// Prepares the program for one rank of a distributed (weighted) graph.
    pub fn new(dg: DistGraph) -> Self {
        let n_local = dg.n_local;
        let n_total = dg.n_total();

        // Weight-sorted adjacency (ties broken by ascending *global* id so
        // every rank orders shared edges identically) and the ghost
        // reverse cross-adjacency both come precomputed from the
        // partition layer.
        let (sxadj, sadj, _) = weight_sorted_csr(&dg);
        let halo = HaloView::build(&dg);

        DistMatching {
            ptr: sxadj[..n_local].to_vec(),
            sxadj,
            sadj,
            state: vec![VState::Free; n_total],
            mate: vec![NO_VERTEX; n_local],
            candidate: vec![NONE; n_local],
            r_set: vec![Vec::new(); n_local],
            halo,
            queue: VecDeque::new(),
            counts: RoundCounts::default(),
            dg,
        }
    }

    /// Builds a **warm** program from a globally consistent retained
    /// view: `global_mate[g]` is vertex `g`'s retained partner
    /// (`NO_VERTEX` = unmatched) and `active[g]` marks the frontier the
    /// warm run re-decides. Retained pairs come up `Matched` (owned and
    /// ghost alike — every rank reseeds from the same view, so ghost
    /// states agree without catch-up messages), inactive unmatched
    /// vertices come up `Failed`, the frontier stays `Free`. The
    /// ordinary protocol then resolves just the frontier; see
    /// [`crate::repair`].
    pub fn reseed_from(dg: DistGraph, global_mate: &[VertexId], active: &[bool]) -> Self {
        let mut p = DistMatching::new(dg);
        for i in 0..p.state.len() {
            let g = p.dg.global_ids[i] as usize;
            if global_mate[g] != NO_VERTEX {
                p.state[i] = VState::Matched;
                if i < p.dg.n_local {
                    p.mate[i] = global_mate[g];
                }
            } else if !active[g] {
                p.state[i] = VState::Failed;
            }
        }
        p
    }

    /// Emits the round's REQUEST/SUCCEEDED/FAILED tallies as a
    /// [`cmg_obs::Event::MatchRound`] and resets them. Free when no
    /// recorder is attached.
    fn emit_round_counts(&mut self, ctx: &RankCtx<MatchMsg>) {
        let c = std::mem::take(&mut self.counts);
        if ctx.observed() {
            ctx.emit(cmg_obs::Event::MatchRound {
                round: ctx.round() as u32,
                requests: c.requests,
                succeeded: c.succeeded,
                failed: c.failed,
            });
        }
    }

    /// Final mates of the owned vertices, as `(global vertex, global mate)`
    /// pairs (`NO_VERTEX` mate = unmatched).
    pub fn local_mates(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.dg.n_local).map(|v| (self.dg.global_ids[v], self.mate[v]))
    }

    /// Access to the underlying distributed graph.
    pub fn dist_graph(&self) -> &DistGraph {
        &self.dg
    }

    /// `true` once every owned vertex has left the `Free` state (matched
    /// or failed) — the per-rank quiescence condition. A rank that goes
    /// `Idle` while this is `false` has dropped protocol work on the
    /// floor; the `cmg-check` termination oracle asserts it after every
    /// run.
    pub fn is_resolved(&self) -> bool {
        (0..self.dg.n_local).all(|v| self.state[v] != VState::Free)
    }

    /// This rank's contribution to the global matching weight: each
    /// matched edge is counted exactly once, by the owner of its
    /// smaller-id endpoint — so summing over all ranks gives the total
    /// weight without materializing the global graph.
    pub fn local_matched_weight(&self) -> Weight {
        let mut total = 0.0;
        for v in 0..self.dg.n_local as u32 {
            let m = self.mate[v as usize];
            let vg = self.dg.global_ids[v as usize];
            if m != NO_VERTEX && vg < m {
                // Total by construction: a mate is always a neighbor (the
                // protocol only ever matches across an adjacency entry),
                // so the lookup can only succeed — but stay total rather
                // than assert, per the no-panic policy for library code.
                let Some(&ml) = self.dg.global_to_local.get(&m) else {
                    continue;
                };
                if let Some((_, w)) = self.dg.neighbors_weighted(v).find(|&(u, _)| u == ml) {
                    total += w;
                }
            }
        }
        total
    }

    /// This rank's contribution to the global matching cardinality
    /// (counted like [`Self::local_matched_weight`]).
    pub fn local_matched_edges(&self) -> usize {
        (0..self.dg.n_local as u32)
            .filter(|&v| {
                let m = self.mate[v as usize];
                m != NO_VERTEX && self.dg.global_ids[v as usize] < m
            })
            .count()
    }

    /// Advances `v`'s pointer past unavailable neighbors; returns the new
    /// candidate (local index) or `NONE`.
    fn advance(&mut self, v: u32, ctx: &mut RankCtx<MatchMsg>) -> u32 {
        let hi = self.sxadj[v as usize + 1];
        let mut steps = 1u64;
        while self.ptr[v as usize] < hi
            && self.state[self.sadj[self.ptr[v as usize]] as usize] != VState::Free
        {
            self.ptr[v as usize] += 1;
            steps += 1;
        }
        ctx.charge(steps);
        if self.ptr[v as usize] < hi {
            self.sadj[self.ptr[v as usize]]
        } else {
            NONE
        }
    }

    /// (Re)computes `v`'s candidate mate and acts on it: mutual-candidate
    /// matches, REQUESTs to ghosts, or failure.
    fn recompute(&mut self, v: u32, ctx: &mut RankCtx<MatchMsg>) {
        debug_assert_eq!(self.state[v as usize], VState::Free);
        let c = self.advance(v, ctx);
        self.candidate[v as usize] = c;
        if c == NONE {
            self.fail(v, ctx);
            return;
        }
        if !self.dg.is_ghost(c) {
            // Local candidate: locally dominant iff mutual.
            if self.candidate[c as usize] == v {
                self.match_pair(v, c, ctx);
            }
        } else {
            // Ghost candidate: propose across the cross edge.
            self.counts.requests += 1;
            ctx.send(
                self.dg.owner(c),
                &MatchMsg::Request {
                    from: self.dg.global_ids[v as usize],
                    to: self.dg.global_ids[c as usize],
                },
            );
            // A proposal may already be waiting from that very neighbor.
            if self.r_set[v as usize].contains(&c) {
                self.match_pair(v, c, ctx);
            }
        }
    }

    /// Matches owned vertex `v` with local index `c` (owned or ghost).
    fn match_pair(&mut self, v: u32, c: u32, ctx: &mut RankCtx<MatchMsg>) {
        debug_assert_eq!(self.state[v as usize], VState::Free);
        debug_assert_eq!(self.state[c as usize], VState::Free);
        self.state[v as usize] = VState::Matched;
        self.state[c as usize] = VState::Matched;
        self.mate[v as usize] = self.dg.global_ids[c as usize];
        self.r_set[v as usize].clear();
        self.announce_matched(v, c, ctx);
        self.queue.push_back(v);
        self.queue.push_back(c);
        if !self.dg.is_ghost(c) {
            self.mate[c as usize] = self.dg.global_ids[v as usize];
            self.r_set[c as usize].clear();
            self.announce_matched(c, v, ctx);
        }
    }

    /// Sends SUCCEEDED for owned vertex `v` to every ghost neighbor except
    /// its mate `m`.
    fn announce_matched(&mut self, v: u32, m: u32, ctx: &mut RankCtx<MatchMsg>) {
        let vg = self.dg.global_ids[v as usize];
        for i in self.sxadj[v as usize]..self.sxadj[v as usize + 1] {
            let u = self.sadj[i];
            if u != m && self.dg.is_ghost(u) && self.state[u as usize] == VState::Free {
                ctx.charge(1);
                self.counts.succeeded += 1;
                ctx.send(
                    self.dg.owner(u),
                    &MatchMsg::Succeeded {
                        from: vg,
                        to: self.dg.global_ids[u as usize],
                    },
                );
            }
        }
    }

    /// Marks owned vertex `v` unmatchable and notifies ghost neighbors.
    fn fail(&mut self, v: u32, ctx: &mut RankCtx<MatchMsg>) {
        self.state[v as usize] = VState::Failed;
        self.r_set[v as usize].clear();
        let vg = self.dg.global_ids[v as usize];
        for i in self.sxadj[v as usize]..self.sxadj[v as usize + 1] {
            let u = self.sadj[i];
            if self.dg.is_ghost(u) && self.state[u as usize] == VState::Free {
                ctx.charge(1);
                self.counts.failed += 1;
                ctx.send(
                    self.dg.owner(u),
                    &MatchMsg::Failed {
                        from: vg,
                        to: self.dg.global_ids[u as usize],
                    },
                );
            }
        }
        self.queue.push_back(v);
    }

    /// Inner loop: drains the queue of newly unavailable vertices,
    /// recomputing the candidates of affected Free owned neighbors — all
    /// without communication (messages are only *buffered* for the round's
    /// bundles).
    fn drain_queue(&mut self, ctx: &mut RankCtx<MatchMsg>) {
        while let Some(x) = self.queue.pop_front() {
            let n_local = self.dg.n_local;
            if (x as usize) < n_local {
                let (lo, hi) = (self.sxadj[x as usize], self.sxadj[x as usize + 1]);
                for i in lo..hi {
                    let w = self.sadj[i];
                    ctx.charge(1);
                    if (w as usize) < n_local
                        && self.state[w as usize] == VState::Free
                        && self.candidate[w as usize] == x
                    {
                        self.recompute(w, ctx);
                    }
                }
            } else {
                let gi = x as usize - n_local;
                let (lo, hi) = (self.halo.ghost_adj_x[gi], self.halo.ghost_adj_x[gi + 1]);
                for i in lo..hi {
                    let w = self.halo.ghost_adj[i];
                    ctx.charge(1);
                    if self.state[w as usize] == VState::Free && self.candidate[w as usize] == x {
                        self.recompute(w, ctx);
                    }
                }
            }
        }
    }

    /// Handles one incoming message.
    fn handle(&mut self, msg: MatchMsg, ctx: &mut RankCtx<MatchMsg>) {
        ctx.charge(1);
        match msg {
            MatchMsg::Request { from, to } => {
                let v = self.dg.global_to_local[&to];
                let u = self.dg.global_to_local[&from];
                debug_assert!(!self.dg.is_ghost(v));
                if self.state[v as usize] != VState::Free {
                    // Our SUCCEEDED/FAILED already crossed this REQUEST.
                    return;
                }
                if self.candidate[v as usize] == u {
                    self.match_pair(v, u, ctx);
                    self.drain_queue(ctx);
                } else {
                    self.r_set[v as usize].push(u);
                }
            }
            MatchMsg::Succeeded { from, to: _ } | MatchMsg::Failed { from, to: _ } => {
                let u = self.dg.global_to_local[&from];
                debug_assert!(self.dg.is_ghost(u));
                if self.state[u as usize] == VState::Free {
                    self.state[u as usize] = match msg {
                        MatchMsg::Succeeded { .. } => VState::Matched,
                        _ => VState::Failed,
                    };
                    self.queue.push_back(u);
                    self.drain_queue(ctx);
                }
            }
        }
    }
}

impl RankProgram for DistMatching {
    type Msg = MatchMsg;
    type Snapshot = Vec<MatchSnap>;
    type Meta = DistGraph;

    fn snapshot(&self) -> Vec<MatchSnap> {
        let n_local = self.dg.n_local;
        let mut recs = Vec::with_capacity(n_local + self.queue.len() + 1);
        for v in 0..n_local {
            recs.push(MatchSnap::Vertex {
                ptr: self.ptr[v] as u64,
                state: self.state[v].to_u8(),
                mate: self.mate[v],
                candidate: self.candidate[v],
            });
        }
        for g in n_local..self.state.len() {
            if self.state[g] != VState::Free {
                recs.push(MatchSnap::Ghost {
                    idx: g as u32,
                    state: self.state[g].to_u8(),
                });
            }
        }
        for v in 0..n_local {
            for &requester in &self.r_set[v] {
                recs.push(MatchSnap::Proposal {
                    v: v as u32,
                    requester,
                });
            }
        }
        for &idx in &self.queue {
            recs.push(MatchSnap::Queued { idx });
        }
        let c = self.counts;
        if c.requests != 0 || c.succeeded != 0 || c.failed != 0 {
            recs.push(MatchSnap::Counts {
                requests: c.requests,
                succeeded: c.succeeded,
                failed: c.failed,
            });
        }
        recs
    }

    fn restore(meta: DistGraph, snap: Vec<MatchSnap>) -> Self {
        let mut p = DistMatching::new(meta);
        let mut next_vertex = 0usize;
        for rec in snap {
            match rec {
                MatchSnap::Vertex {
                    ptr,
                    state,
                    mate,
                    candidate,
                } => {
                    let v = next_vertex;
                    next_vertex += 1;
                    p.ptr[v] = ptr as usize;
                    p.state[v] = VState::from_u8(state);
                    p.mate[v] = mate;
                    p.candidate[v] = candidate;
                }
                MatchSnap::Ghost { idx, state } => p.state[idx as usize] = VState::from_u8(state),
                MatchSnap::Proposal { v, requester } => p.r_set[v as usize].push(requester),
                MatchSnap::Queued { idx } => p.queue.push_back(idx),
                MatchSnap::Counts {
                    requests,
                    succeeded,
                    failed,
                } => {
                    p.counts = RoundCounts {
                        requests,
                        succeeded,
                        failed,
                    };
                }
            }
        }
        debug_assert_eq!(next_vertex, p.dg.n_local, "snapshot/graph mismatch");
        p
    }

    fn meta(&self) -> DistGraph {
        self.dg.clone()
    }

    fn on_start(&mut self, ctx: &mut RankCtx<MatchMsg>) -> Status {
        // Initial candidates for every still-free owned vertex (on a
        // cold start that is all of them; a warm reseed skips the
        // retained pairs and known-unmatchable vertices)…
        for v in 0..self.dg.n_local as u32 {
            if self.state[v as usize] == VState::Free {
                self.candidate[v as usize] = self.advance(v, ctx);
            }
        }
        // …then find the initial locally dominant edges and proposals.
        for v in 0..self.dg.n_local as u32 {
            if self.state[v as usize] != VState::Free {
                continue;
            }
            let c = self.candidate[v as usize];
            if c == NONE {
                self.fail(v, ctx); // isolated vertex
            } else if !self.dg.is_ghost(c) {
                if self.candidate[c as usize] == v && (c as usize) > (v as usize) {
                    self.match_pair(v, c, ctx);
                }
            } else {
                self.counts.requests += 1;
                ctx.send(
                    self.dg.owner(c),
                    &MatchMsg::Request {
                        from: self.dg.global_ids[v as usize],
                        to: self.dg.global_ids[c as usize],
                    },
                );
            }
        }
        self.drain_queue(ctx);
        self.emit_round_counts(ctx);
        Status::Idle
    }

    fn on_round(
        &mut self,
        inbox: &mut Vec<(Rank, Vec<MatchMsg>)>,
        ctx: &mut RankCtx<MatchMsg>,
    ) -> Status {
        for (_, msgs) in inbox.drain(..) {
            for msg in msgs {
                self.handle(msg, ctx);
            }
        }
        self.drain_queue(ctx);
        self.emit_round_counts(ctx);
        Status::Idle
    }
}

/// Assembles the global matching from finished rank programs, verifying
/// cross-rank agreement on every matched edge.
///
/// # Panics
/// Panics if two ranks disagree about a matched pair (would indicate a
/// protocol bug).
pub fn assemble_matching(programs: &[DistMatching], num_vertices: usize) -> Matching {
    let mut mate = vec![NO_VERTEX; num_vertices];
    for p in programs {
        for (v, m) in p.local_mates() {
            mate[v as usize] = m;
        }
    }
    for v in 0..num_vertices as VertexId {
        let m = mate[v as usize];
        assert!(
            m == NO_VERTEX || mate[m as usize] == v,
            "ranks disagree: mate[{v}]={m} but mate[{m}]={}",
            mate[m as usize]
        );
    }
    Matching::from_mates(mate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use cmg_graph::generators::{complete, erdos_renyi, grid2d};
    use cmg_graph::weights::{assign_weights, WeightScheme};
    use cmg_graph::CsrGraph;
    use cmg_partition::simple::{block_partition, hash_partition};
    use cmg_partition::Partition;
    use cmg_runtime::{CostModel, EngineConfig, SimEngine};

    fn free_config() -> EngineConfig {
        EngineConfig {
            cost: CostModel::compute_only(),
            ..Default::default()
        }
    }

    fn run_dist(g: &CsrGraph, partition: &Partition) -> (Matching, cmg_runtime::RunStats) {
        let parts = DistGraph::build_all(g, partition);
        let programs: Vec<DistMatching> = parts.into_iter().map(DistMatching::new).collect();
        let result = SimEngine::new(programs, free_config()).run();
        assert!(!result.hit_round_cap, "matching did not quiesce");
        (
            assemble_matching(&result.programs, g.num_vertices()),
            result.stats,
        )
    }

    #[test]
    fn message_codec_round_trip() {
        use cmg_runtime::WireMessage;
        let msgs = [
            MatchMsg::Request { from: 1, to: 2 },
            MatchMsg::Succeeded { from: 3, to: 4 },
            MatchMsg::Failed { from: 5, to: 6 },
        ];
        let mut buf = bytes::BytesMut::new();
        for m in &msgs {
            m.encode(&mut buf);
        }
        let decoded: Vec<MatchMsg> = cmg_runtime::message::decode_all(buf.freeze()).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn figure31_example_one_vertex_per_rank() {
        // The paper's illustration: triangle with w(u,v)=3, w(u,w)=2,
        // w(v,w)=1, one vertex per processor.
        let mut b = cmg_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 3.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let p = Partition::new(vec![0, 1, 2], 3);
        let (m, stats) = run_dist(&g, &p);
        assert_eq!(m.mate(0), 1);
        assert_eq!(m.mate(1), 0);
        assert!(!m.is_matched(2));
        // §3.2: at least two and at most three messages per edge.
        let msgs = stats.total_messages();
        assert!((6..=9).contains(&msgs), "messages: {msgs}");
    }

    #[test]
    fn matches_sequential_on_distinct_weights() {
        for seed in 0..6 {
            let g = assign_weights(
                &erdos_renyi(80, 240, seed),
                WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
                seed,
            );
            let expected = seq::local_dominant(&g);
            for parts in [1u32, 2, 4, 7] {
                let p = hash_partition(g.num_vertices(), parts, seed);
                let (m, _) = run_dist(&g, &p);
                m.validate(&g).unwrap();
                assert_eq!(
                    m, expected,
                    "seed {seed}, {parts} parts: distributed != sequential"
                );
            }
        }
    }

    #[test]
    fn weight_independent_of_rank_count() {
        // §5.2: "the sum of the weights of edges in the computed matching
        // remained the same, regardless of the number of processors used."
        let g = assign_weights(
            &grid2d(12, 12),
            WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
            3,
        );
        let w1 = run_dist(&g, &Partition::single(g.num_vertices()))
            .0
            .weight(&g);
        for parts in [2u32, 3, 6, 12] {
            let p = block_partition(g.num_vertices(), parts);
            let w = run_dist(&g, &p).0.weight(&g);
            assert!((w - w1).abs() < 1e-9, "{parts} parts: {w} vs {w1}");
        }
    }

    #[test]
    fn equal_weights_are_handled() {
        // All-equal weights exercise every tie-break path.
        let g = assign_weights(&complete(10), WeightScheme::Equal(1.0), 0);
        let p = hash_partition(10, 3, 1);
        let (m, _) = run_dist(&g, &p);
        m.validate(&g).unwrap();
        assert!(m.is_maximal(&g));
        assert_eq!(m.cardinality(), 5);
    }

    #[test]
    fn disconnected_graph_and_isolated_vertices() {
        let mut b = cmg_graph::GraphBuilder::new(7);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 2.0);
        // 4, 5, 6 isolated
        let g = b.build();
        let p = block_partition(7, 3);
        let (m, _) = run_dist(&g, &p);
        m.validate(&g).unwrap();
        assert_eq!(m.cardinality(), 2);
        assert!(!m.is_matched(4));
    }

    #[test]
    fn bundling_reduces_packets_not_messages() {
        let g = assign_weights(
            &grid2d(16, 16),
            WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
            7,
        );
        let p = block_partition(g.num_vertices(), 4);
        let parts = DistGraph::build_all(&g, &p);
        let run = |bundling: bool| {
            let programs: Vec<DistMatching> =
                parts.iter().cloned().map(DistMatching::new).collect();
            let cfg = EngineConfig {
                cost: CostModel::compute_only(),
                bundling,
                ..Default::default()
            };
            SimEngine::new(programs, cfg).run()
        };
        let bundled = run(true);
        let unbundled = run(false);
        assert_eq!(
            bundled.stats.total_messages(),
            unbundled.stats.total_messages()
        );
        assert!(
            bundled.stats.total_packets() < unbundled.stats.total_packets() / 2,
            "bundling should collapse packets: {} vs {}",
            bundled.stats.total_packets(),
            unbundled.stats.total_packets()
        );
        // And the matching itself is identical.
        let ma = assemble_matching(&bundled.programs, g.num_vertices());
        let mb = assemble_matching(&unbundled.programs, g.num_vertices());
        assert_eq!(ma, mb);
    }

    #[test]
    fn message_bound_per_cross_edge() {
        // At most 3 logical messages per cross edge (§3.2).
        let g = assign_weights(
            &grid2d(10, 10),
            WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
            11,
        );
        let p = block_partition(g.num_vertices(), 5);
        let cross = p.quality(&g).edge_cut as u64;
        let (_, stats) = run_dist(&g, &p);
        assert!(
            stats.total_messages() <= 3 * cross,
            "messages {} > 3 × cut {cross}",
            stats.total_messages()
        );
    }
}
