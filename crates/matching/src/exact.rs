//! Exact maximum-weight matching references.
//!
//! Table 1.1 of the paper reports the ½-approximation's solution quality
//! *relative to optimal solutions*; this module supplies the optima:
//!
//! * [`max_weight_bipartite`]: successive shortest paths with potentials
//!   (min-cost-flow formulation) for bipartite graphs — the Table 1.1
//!   reference (the table's inputs are bipartite graphs of matrices);
//! * [`brute_force_weight`]: bitmask dynamic program for tiny general
//!   graphs — the property-test oracle.

use crate::Matching;
use cmg_graph::{BipartiteGraph, CsrGraph, VertexId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an exact bipartite solve.
#[derive(Clone, Debug)]
pub struct BipartiteOptimum {
    /// Optimal total weight.
    pub weight: Weight,
    /// Matched pairs `(left, right)`.
    pub pairs: Vec<(VertexId, VertexId)>,
}

impl BipartiteOptimum {
    /// Converts to a [`Matching`] over the ids of
    /// [`BipartiteGraph::to_general`] (right ids offset by `num_left`).
    pub fn to_general_matching(&self, num_left: usize, num_right: usize) -> Matching {
        let mut m = Matching::empty(num_left + num_right);
        for &(l, r) in &self.pairs {
            m.add(l, r + num_left as VertexId);
        }
        m
    }
}

/// Min-cost-flow arc.
#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    cap: u32,
    cost: f64,
}

/// Residual network with paired forward/backward arcs.
struct Network {
    arcs: Vec<Arc>,
    /// Outgoing arc indices per node.
    out: Vec<Vec<u32>>,
}

impl Network {
    fn new(nodes: usize) -> Self {
        Network {
            arcs: Vec::new(),
            out: vec![Vec::new(); nodes],
        }
    }

    fn add_edge(&mut self, from: u32, to: u32, cap: u32, cost: f64) {
        let id = self.arcs.len() as u32;
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.out[from as usize].push(id);
        self.out[to as usize].push(id + 1);
    }
}

/// Exact maximum-weight bipartite matching by successive shortest
/// augmenting paths with Johnson potentials.
///
/// Only edges with positive weight can improve the objective, so
/// non-positive-weight edges are never matched. Complexity
/// `O(k · m log n)` where `k` is the optimal cardinality.
pub fn max_weight_bipartite(g: &BipartiteGraph) -> BipartiteOptimum {
    let nl = g.num_left();
    let nr = g.num_right();
    let nodes = 2 + nl + nr;
    let source = 0u32;
    let sink = 1u32;
    let left = |l: VertexId| 2 + l;
    let right = |r: VertexId| 2 + nl as u32 + r;

    let mut net = Network::new(nodes);
    let mut wmax: f64 = 0.0;
    for l in 0..nl as VertexId {
        net.add_edge(source, left(l), 1, 0.0);
    }
    for r in 0..nr as VertexId {
        net.add_edge(right(r), sink, 1, 0.0);
    }
    for (l, r, w) in g.edges() {
        net.add_edge(left(l), right(r), 1, -w);
        wmax = wmax.max(w);
    }

    // Initial potentials make every reduced cost non-negative:
    // φ(left) = 0, φ(right) = φ(sink) = −wmax.
    let mut phi = vec![0.0f64; nodes];
    for (node, p) in phi.iter_mut().enumerate() {
        if node != source as usize && node >= 2 + nl || node == sink as usize {
            *p = -wmax;
        }
    }

    let mut total = 0.0f64;
    let mut dist = vec![f64::INFINITY; nodes];
    let mut prev_arc = vec![u32::MAX; nodes];
    loop {
        // Dijkstra on reduced costs.
        dist.fill(f64::INFINITY);
        prev_arc.fill(u32::MAX);
        dist[source as usize] = 0.0;
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((OrdF64(0.0), source)));
        while let Some(Reverse((OrdF64(d), node))) = heap.pop() {
            if d > dist[node as usize] {
                continue;
            }
            for &aid in &net.out[node as usize] {
                let arc = &net.arcs[aid as usize];
                if arc.cap == 0 {
                    continue;
                }
                let rc = arc.cost + phi[node as usize] - phi[arc.to as usize];
                debug_assert!(rc > -1e-9, "negative reduced cost {rc}");
                let nd = d + rc.max(0.0);
                if nd + 1e-15 < dist[arc.to as usize] {
                    dist[arc.to as usize] = nd;
                    prev_arc[arc.to as usize] = aid;
                    heap.push(Reverse((OrdF64(nd), arc.to)));
                }
            }
        }
        if !dist[sink as usize].is_finite() {
            break; // no augmenting path at all
        }
        // Real path cost; augment only while it strictly improves.
        let path_cost = dist[sink as usize] + phi[sink as usize] - phi[source as usize];
        if path_cost >= -1e-12 {
            break;
        }
        // Update potentials.
        for node in 0..nodes {
            if dist[node].is_finite() {
                phi[node] += dist[node];
            }
        }
        // Augment one unit along the path.
        let mut node = sink;
        while node != source {
            let aid = prev_arc[node as usize] as usize;
            net.arcs[aid].cap -= 1;
            net.arcs[aid ^ 1].cap += 1;
            // Either direction: the paired arc points back at the
            // traversal's origin node.
            node = net.arcs[aid ^ 1].to;
        }
        total += -path_cost;
    }

    // Extract matched pairs: saturated left→right arcs.
    let mut pairs = Vec::new();
    for l in 0..nl as VertexId {
        for &aid in &net.out[left(l) as usize] {
            if aid % 2 != 0 {
                continue; // backward arc
            }
            let arc = &net.arcs[aid as usize];
            let to = arc.to;
            if to != source && to != sink && to >= 2 + nl as u32 && arc.cap == 0 {
                pairs.push((l, to - 2 - nl as u32));
            }
        }
    }
    BipartiteOptimum {
        weight: total,
        pairs,
    }
}

/// Total-order wrapper for `f64` heap keys.
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Exact maximum-weight matching of a tiny general graph by bitmask
/// dynamic programming. `O(2ⁿ·Δ)`; intended as a test oracle.
///
/// # Panics
/// Panics if `g` has more than 24 vertices.
pub fn brute_force_weight(g: &CsrGraph) -> Weight {
    let n = g.num_vertices();
    assert!(n <= 24, "brute force limited to 24 vertices");
    let mut memo: Vec<f64> = vec![f64::NAN; 1usize << n];
    solve(g, 0, &mut memo)
}

fn solve(g: &CsrGraph, used: u32, memo: &mut [f64]) -> Weight {
    let n = g.num_vertices() as u32;
    // First unused vertex.
    let mut v = used.trailing_ones();
    while v < n && used & (1 << v) != 0 {
        v += 1;
    }
    if v >= n {
        return 0.0;
    }
    if !memo[used as usize].is_nan() {
        return memo[used as usize];
    }
    // Option 1: leave v unmatched.
    let mut best = solve(g, used | (1 << v), memo);
    // Option 2: match v with an unused neighbor.
    for (u, w) in g.neighbors_weighted(v) {
        if used & (1 << u) == 0 {
            best = best.max(w + solve(g, used | (1 << v) | (1 << u), memo));
        }
    }
    memo[used as usize] = best;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use cmg_graph::generators::{erdos_renyi, random_bipartite};
    use cmg_graph::weights::{assign_weights, WeightScheme};
    use cmg_graph::GraphBuilder;

    #[test]
    fn bipartite_hand_example() {
        // left 0: r0 (w 5), r1 (w 1); left 1: r0 (w 4).
        // Optimal: (0,r1)+(1,r0) = 5? No: (0,r0)=5 blocks (1,r0)=4 → 5+0? or 1+4=5.
        // Both give 5... make it sharper: (0,r0)=5, (0,r1)=1, (1,r0)=4.9:
        // greedy takes 5 → total 6 with (0,r0)+(1,?) none = 5? (0,r0)+nothing=5,
        // alternative (0,r1)+(1,r0)=5.9 → optimum 5.9.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0, 5.0), (0, 1, 1.0), (1, 0, 4.9)]);
        let opt = max_weight_bipartite(&g);
        assert!((opt.weight - 5.9).abs() < 1e-9, "weight {}", opt.weight);
        let mut pairs = opt.pairs.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn zero_weight_edges_are_not_forced() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0, 0.0)]);
        let opt = max_weight_bipartite(&g);
        assert_eq!(opt.weight, 0.0);
    }

    #[test]
    fn empty_bipartite() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]);
        let opt = max_weight_bipartite(&g);
        assert_eq!(opt.weight, 0.0);
        assert!(opt.pairs.is_empty());
    }

    #[test]
    fn optimum_matches_brute_force_on_small_bipartite() {
        for seed in 0..8 {
            let bg = random_bipartite(5, 5, 12, seed);
            let opt = max_weight_bipartite(&bg);
            let general = bg.to_general();
            let brute = brute_force_weight(&general);
            assert!(
                (opt.weight - brute).abs() < 1e-9,
                "seed {seed}: ssp {} vs brute {brute}",
                opt.weight
            );
            // Also check the extracted pairs are a valid matching of that
            // weight.
            let m = opt.to_general_matching(5, 5);
            m.validate(&general).unwrap();
            assert!((m.weight(&general) - opt.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn half_approximation_bound_holds_against_optimum() {
        for seed in 0..8 {
            let bg = random_bipartite(8, 8, 24, 50 + seed);
            let g = bg.to_general();
            let opt = max_weight_bipartite(&bg).weight;
            for alg in [
                seq::greedy,
                seq::local_dominant,
                seq::path_growing,
                seq::suitor,
            ] {
                let w = alg(&g).weight(&g);
                assert!(
                    w >= 0.5 * opt - 1e-9,
                    "seed {seed}: approx {w} < half of {opt}"
                );
                assert!(w <= opt + 1e-9);
            }
        }
    }

    #[test]
    fn brute_force_on_triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 3.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 1.0);
        assert_eq!(brute_force_weight(&b.build()), 3.0);
    }

    #[test]
    fn brute_force_vs_greedy_on_random_graphs() {
        for seed in 0..6 {
            let g = assign_weights(
                &erdos_renyi(10, 20, seed),
                WeightScheme::Uniform { lo: 0.0, hi: 1.0 },
                seed,
            );
            let opt = brute_force_weight(&g);
            let gw = seq::greedy(&g).weight(&g);
            assert!(gw <= opt + 1e-9);
            assert!(gw >= 0.5 * opt - 1e-9);
        }
    }
}
