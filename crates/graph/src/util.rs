//! Small utilities shared across the workspace: deterministic hashing used
//! for the paper's "random function defined over boundary vertices".

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
///
/// Used to derive the per-vertex random priority `r(v)` of Algorithm 4.1
/// ("Assign v a random number r(v) generated using v's ID as seed") without
/// any communication: every rank computes the same value from the global
/// vertex id.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic per-vertex random priority, seeded by an experiment seed.
///
/// Distinct seeds give independent priority functions; a fixed seed makes
/// every run reproducible.
#[inline]
pub fn vertex_priority(global_id: u64, seed: u64) -> u64 {
    splitmix64(global_id ^ splitmix64(seed))
}

/// A fast FxHash-style hasher for integer keys (the workspace's hot maps
/// are keyed by vertex ids; SipHash would dominate profiles).
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast integer hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast integer hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive inputs should differ in many bits.
        let d = (splitmix64(41) ^ splitmix64(42)).count_ones();
        assert!(d > 16, "poor diffusion: {d} differing bits");
    }

    #[test]
    fn vertex_priority_varies_with_seed() {
        assert_ne!(vertex_priority(7, 1), vertex_priority(7, 2));
        assert_eq!(vertex_priority(7, 1), vertex_priority(7, 1));
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(10, 1);
        m.insert(20, 2);
        assert_eq!(m.get(&10), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn priorities_mostly_distinct() {
        let mut set = FxHashSet::default();
        for v in 0..10_000u64 {
            set.insert(vertex_priority(v, 99));
        }
        assert_eq!(set.len(), 10_000);
    }
}
