//! Compressed-sparse-row representation of an undirected graph.

use crate::{VertexId, Weight, NO_VERTEX};

/// An undirected graph in CSR (adjacency-array) form.
///
/// Every undirected edge `{u, v}` is stored twice, once in each endpoint's
/// adjacency list. Adjacency lists are sorted by neighbor id and contain no
/// duplicates or self-loops (enforced by [`crate::GraphBuilder`]).
///
/// Weights are optional: unweighted graphs (e.g. coloring inputs) carry no
/// weight array and report a weight of `1.0` for every edge.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// Offsets into `adj`/`weights`; length `n + 1`.
    xadj: Vec<usize>,
    /// Concatenated adjacency lists; length `2m`.
    adj: Vec<VertexId>,
    /// Per-directed-edge weights parallel to `adj`, or empty if unweighted.
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds a graph directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (`xadj` not monotone, neighbor
    /// ids out of range, weights of the wrong length).
    pub fn from_raw(xadj: Vec<usize>, adj: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        assert!(!xadj.is_empty(), "xadj must have length n+1 >= 1");
        let n = xadj.len() - 1;
        assert!(n < NO_VERTEX as usize, "too many vertices");
        assert_eq!(xadj.last().copied(), Some(adj.len()), "xadj/adj mismatch");
        assert!(
            weights.is_empty() || weights.len() == adj.len(),
            "weights must be empty or parallel to adj"
        );
        for w in xadj.windows(2) {
            assert!(w[0] <= w[1], "xadj must be non-decreasing");
        }
        for &u in &adj {
            assert!((u as usize) < n, "neighbor id {u} out of range");
        }
        CsrGraph { xadj, adj, weights }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            xadj: vec![0; n + 1],
            adj: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// `true` if the graph carries per-edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Weights parallel to [`Self::neighbors`]; empty slice if unweighted.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[Weight] {
        if self.weights.is_empty() {
            &[]
        } else {
            &self.weights[self.xadj[v as usize]..self.xadj[v as usize + 1]]
        }
    }

    /// Iterates `(neighbor, weight)` pairs of `v` (weight `1.0` if
    /// unweighted).
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        let weighted = !self.weights.is_empty();
        (lo..hi).map(move |i| {
            let w = if weighted { self.weights[i] } else { 1.0 };
            (self.adj[i], w)
        })
    }

    /// Weight of edge `{u, v}`, or `None` if the edge does not exist.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let nbrs = self.neighbors(u);
        let idx = nbrs.binary_search(&v).ok()?;
        Some(if self.weights.is_empty() {
            1.0
        } else {
            self.weights[self.xadj[u as usize] + idx]
        })
    }

    /// `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates every undirected edge exactly once as `(u, v, w)` with
    /// `u < v` (weight `1.0` if unweighted).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors_weighted(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Maximum vertex degree Δ (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum vertex degree (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> Weight {
        if self.weights.is_empty() {
            self.num_edges() as Weight
        } else {
            self.weights.iter().sum::<Weight>() / 2.0
        }
    }

    /// Returns a copy of this graph with the given weights installed.
    ///
    /// `f` is invoked once per undirected edge `(u, v)` with `u < v`; both
    /// directed copies receive the same value, keeping the graph symmetric.
    #[allow(clippy::needless_range_loop)] // paired indexing into two arrays
    pub fn with_weights(&self, mut f: impl FnMut(VertexId, VertexId) -> Weight) -> CsrGraph {
        let mut weights = vec![0.0; self.adj.len()];
        for u in 0..self.num_vertices() as VertexId {
            for i in self.xadj[u as usize]..self.xadj[u as usize + 1] {
                let v = self.adj[i];
                if u < v {
                    weights[i] = f(u, v);
                }
            }
        }
        // Mirror the weights onto the reverse directed edges.
        for u in 0..self.num_vertices() as VertexId {
            for i in self.xadj[u as usize]..self.xadj[u as usize + 1] {
                let v = self.adj[i];
                if u > v {
                    match self.neighbors(v).binary_search(&u) {
                        Ok(off) => weights[i] = weights[self.xadj[v as usize] + off],
                        Err(_) => debug_assert!(false, "adjacency not symmetric at ({u},{v})"),
                    }
                }
            }
        }
        CsrGraph {
            xadj: self.xadj.clone(),
            adj: self.adj.clone(),
            weights,
        }
    }

    /// Strips the weights, producing an unweighted copy of the structure.
    pub fn unweighted(&self) -> CsrGraph {
        CsrGraph {
            xadj: self.xadj.clone(),
            adj: self.adj.clone(),
            weights: Vec::new(),
        }
    }

    /// Verifies structural invariants: sorted adjacency, no self-loops, no
    /// duplicates, symmetric edges, symmetric weights. Intended for tests.
    pub fn validate(&self) -> Result<(), String> {
        for u in 0..self.num_vertices() as VertexId {
            let nbrs = self.neighbors(u);
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {u} not strictly sorted"));
                }
            }
            for &v in nbrs {
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if !self.has_edge(v, u) {
                    return Err(format!("edge ({u},{v}) not symmetric"));
                }
                if self.is_weighted() && self.edge_weight(u, v) != self.edge_weight(v, u) {
                    return Err(format!("weight of ({u},{v}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes (for capacity planning in the
    /// scaling harnesses).
    pub fn memory_bytes(&self) -> usize {
        self.xadj.len() * std::mem::size_of::<usize>()
            + self.adj.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 3.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 1.0);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(1, 0), Some(3.0));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.total_weight(), 6.0);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 3.0), (0, 2, 2.0), (1, 2, 1.0)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.total_weight(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn unweighted_graph_reports_unit_weights() {
        let g = triangle().unweighted();
        assert!(!g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.total_weight(), 3.0);
        assert_eq!(g.neighbor_weights(0), &[] as &[Weight]);
    }

    #[test]
    fn with_weights_is_symmetric() {
        let g = triangle().unweighted();
        let wg = g.with_weights(|u, v| (u + v) as Weight);
        assert_eq!(wg.edge_weight(0, 2), Some(2.0));
        assert_eq!(wg.edge_weight(2, 0), Some(2.0));
        wg.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "xadj/adj mismatch")]
    fn from_raw_rejects_inconsistent_arrays() {
        CsrGraph::from_raw(vec![0, 2], vec![1], vec![]);
    }

    #[test]
    fn neighbors_weighted_on_unweighted() {
        let g = triangle().unweighted();
        let pairs: Vec<_> = g.neighbors_weighted(1).collect();
        assert_eq!(pairs, vec![(0, 1.0), (2, 1.0)]);
    }
}
