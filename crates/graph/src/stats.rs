//! Summary statistics over graphs (printed by the bench harnesses next to
//! each experiment, mirroring the size columns of Tables 1.1 and 5.1).

use crate::CsrGraph;

/// Basic size/degree statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Average degree 2m/n.
    pub avg_degree: f64,
    /// Number of degree-0 vertices.
    pub isolated: usize,
}

impl GraphStats {
    /// Computes statistics in one pass over the degree array.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut min_degree = usize::MAX;
        let mut max_degree = 0;
        let mut isolated = 0;
        for v in 0..n as crate::VertexId {
            let d = g.degree(v);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        if n == 0 {
            min_degree = 0;
        }
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            min_degree,
            max_degree,
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * g.num_edges() as f64 / n as f64
            },
            isolated,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} deg[min={} avg={:.2} max={}] isolated={}",
            self.num_vertices,
            self.num_edges,
            self.min_degree,
            self.avg_degree,
            self.max_degree,
            self.isolated
        )
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() as crate::VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, star};
    use crate::CsrGraph;

    #[test]
    fn stats_of_grid() {
        let s = GraphStats::of(&grid2d(3, 3));
        assert_eq!(s.num_vertices, 9);
        assert_eq!(s.num_edges, 12);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 24.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::of(&CsrGraph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn isolated_counted() {
        let s = GraphStats::of(&CsrGraph::empty(4));
        assert_eq!(s.isolated, 4);
    }

    #[test]
    fn histogram_of_star() {
        let h = degree_histogram(&star(5));
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn display_is_stable() {
        let s = GraphStats::of(&grid2d(2, 2));
        assert_eq!(
            s.to_string(),
            "|V|=4 |E|=4 deg[min=2 avg=2.00 max=2] isolated=0"
        );
    }
}
