//! Graph file I/O: Matrix Market coordinate format (the UF Sparse Matrix
//! Collection's native format, so the paper's real matrices can be dropped
//! in when available) and a simple whitespace edge-list format.

use crate::{BipartiteGraph, CsrGraph, GraphBuilder, VertexId, Weight};
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while parsing graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> IoError {
    IoError::Parse(msg.into())
}

/// A sparse matrix read from Matrix Market coordinate format.
#[derive(Clone, Debug)]
pub struct CoordinateMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// `(row, col, value)` entries, zero-based.
    pub entries: Vec<(VertexId, VertexId, Weight)>,
    /// Whether the header declared `symmetric`.
    pub symmetric: bool,
}

impl CoordinateMatrix {
    /// Interprets the matrix as the **bipartite graph** of its nonzero
    /// pattern (rows = left vertices, columns = right) with `|value|` as
    /// edge weight — the representation Table 1.1 uses.
    pub fn to_bipartite(&self) -> BipartiteGraph {
        BipartiteGraph::from_edges(
            self.rows,
            self.cols,
            self.entries.iter().map(|&(r, c, v)| (r, c, v.abs())),
        )
    }

    /// Interprets a square matrix as the **adjacency graph** of `A + Aᵀ`
    /// (off-diagonal pattern), weight `|value|` — the representation the
    /// coloring experiments use.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn to_adjacency(&self) -> CsrGraph {
        assert_eq!(
            self.rows, self.cols,
            "adjacency graph needs a square matrix"
        );
        let mut b = GraphBuilder::with_capacity(self.rows, self.entries.len());
        for &(r, c, v) in &self.entries {
            if r != c {
                b.add_edge(r, c, v.abs());
            }
        }
        b.build()
    }
}

/// Reads a Matrix Market `coordinate` file (`real`, `integer` or `pattern`;
/// `general` or `symmetric`).
pub fn read_matrix_market(reader: impl Read) -> Result<CoordinateMatrix, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[1] != "matrix" || fields[2] != "coordinate" {
        return Err(parse_err(format!("unsupported header: {header}")));
    }
    let pattern = fields[3] == "pattern";
    if !matches!(fields[3], "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type: {}", fields[3])));
    }
    let symmetric = fields[4] == "symmetric";
    if !matches!(fields[4], "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry: {}", fields[4])));
    }

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| parse_err(format!("bad size line: {size_line}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(format!("bad size line: {size_line}")));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut entries = Vec::with_capacity(nnz);
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let r: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry: {trimmed}")))?;
        let c: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry: {trimmed}")))?;
        let v: Weight = if pattern {
            1.0
        } else {
            toks.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(format!("bad value: {trimmed}")))?
        };
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(format!("entry out of range: {trimmed}")));
        }
        entries.push(((r - 1) as VertexId, (c - 1) as VertexId, v));
        if symmetric && r != c {
            entries.push(((c - 1) as VertexId, (r - 1) as VertexId, v));
        }
    }
    Ok(CoordinateMatrix {
        rows,
        cols,
        entries,
        symmetric,
    })
}

/// Writes a graph as a Matrix Market symmetric coordinate file.
pub fn write_matrix_market(g: &CsrGraph, mut w: impl Write) -> Result<(), IoError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(
        w,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, wt) in g.edges() {
        // Lower triangle, 1-based: row > col.
        writeln!(w, "{} {} {}", v + 1, u + 1, wt)?;
    }
    Ok(())
}

/// Reads a whitespace edge list: lines of `u v [w]`, zero-based ids,
/// `#`-comments allowed. `n` is inferred as max id + 1.
pub fn read_edge_list(reader: impl Read) -> Result<CsrGraph, IoError> {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut max_id: i64 = -1;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let u: VertexId = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(format!("bad line: {trimmed}")))?;
        let v: VertexId = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(format!("bad line: {trimmed}")))?;
        let w: Weight = match toks.next() {
            Some(t) => t
                .parse()
                .map_err(|_| parse_err(format!("bad weight: {trimmed}")))?,
            None => 1.0,
        };
        max_id = max_id.max(u as i64).max(v as i64);
        edges.push((u, v, w));
    }
    let n = (max_id + 1) as usize;
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

/// Writes a graph as a `u v w` edge list.
pub fn write_edge_list(g: &CsrGraph, mut w: impl Write) -> Result<(), IoError> {
    for (u, v, wt) in g.edges() {
        writeln!(w, "{u} {v} {wt}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;
    use crate::weights::{assign_weights, WeightScheme};

    const MM_GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 4 3\n\
        1 1 2.5\n\
        2 3 -1.0\n\
        3 4 4.0\n";

    const MM_SYMMETRIC: &str = "%%MatrixMarket matrix coordinate real symmetric\n\
        3 3 3\n\
        1 1 1.0\n\
        2 1 2.0\n\
        3 2 3.0\n";

    #[test]
    fn read_general_matrix() {
        let m = read_matrix_market(MM_GENERAL.as_bytes()).unwrap();
        assert_eq!((m.rows, m.cols), (3, 4));
        assert_eq!(m.entries.len(), 3);
        assert!(!m.symmetric);
        let bg = m.to_bipartite();
        assert_eq!(bg.num_edges(), 3);
        assert_eq!(bg.neighbor_weights(1), &[1.0]); // |-1.0|
    }

    #[test]
    fn read_symmetric_matrix_to_adjacency() {
        let m = read_matrix_market(MM_SYMMETRIC.as_bytes()).unwrap();
        assert!(m.symmetric);
        let g = m.to_adjacency();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2); // diagonal dropped
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        g.validate().unwrap();
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.entries, vec![(0, 1, 1.0)]);
    }

    #[test]
    fn reject_bad_header() {
        assert!(read_matrix_market("hello\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn reject_out_of_range_entry() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_round_trip() {
        let g = assign_weights(&grid2d(4, 4), WeightScheme::Uniform { lo: 0.5, hi: 1.5 }, 7);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(&buf[..]).unwrap().to_adjacency();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_round_trip() {
        let g = assign_weights(&grid2d(3, 5), WeightScheme::Integer { max: 9 }, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_unweighted_and_comments() {
        let src = "# comment\n0 1\n1 2\n";
        let g = read_edge_list(src.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }
}
