//! A mutable adapter over [`CsrGraph`] for incremental workloads.
//!
//! CSR is the right layout for the algorithms but the wrong one for
//! mutation: inserting one edge into a packed adjacency array shifts
//! everything behind it. [`MutableGraph`] keeps the edge set in
//! per-vertex hash maps (both directions of every edge), applies
//! [`MutationBatch`]es to that index in O(batch), and rebuilds a fresh
//! [`CsrGraph`] on demand — an explicit, O(n + m) step the caller
//! controls, so a serving layer that repairs warm never pays it on the
//! hot path and the recompute path pays it once per batch at most.
//!
//! The vertex set is fixed at construction: mutations address existing
//! vertex ids only (out-of-range ids are rejected, not grown), which
//! keeps every downstream partition and distributed-graph structure
//! addressable across rebuilds.

use crate::util::FxHashMap;
use crate::{CsrGraph, VertexId, Weight};

/// One edge mutation. Endpoints are unordered (the pair is normalized
/// internally); self-loops are invalid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mutation {
    /// Insert edge `{u, v}` with weight `w`, or overwrite its weight if
    /// it already exists (insert-or-update, like
    /// [`crate::GraphBuilder`]'s duplicate handling).
    Insert {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// Edge weight.
        w: Weight,
    },
    /// Delete edge `{u, v}`. Deleting an absent edge is a no-op (the
    /// batch reports it, see [`ApplyOutcome::missing_deletes`]).
    Delete {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Set the weight of existing edge `{u, v}` to `w`. Reweighting an
    /// absent edge inserts it (documented degenerate case — the serving
    /// layer treats both identically).
    Reweight {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
        /// New edge weight.
        w: Weight,
    },
}

impl Mutation {
    /// The mutation's endpoints, as given.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            Mutation::Insert { u, v, .. }
            | Mutation::Delete { u, v }
            | Mutation::Reweight { u, v, .. } => (u, v),
        }
    }
}

/// An ordered batch of mutations, applied atomically by
/// [`MutableGraph::apply`]. Later entries win over earlier ones
/// touching the same edge (map semantics).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationBatch {
    /// The mutations, in application order.
    pub ops: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        MutationBatch::default()
    }

    /// Appends an insert-or-update.
    pub fn insert(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        self.ops.push(Mutation::Insert { u, v, w });
        self
    }

    /// Appends a delete.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.ops.push(Mutation::Delete { u, v });
        self
    }

    /// Appends a weight update.
    pub fn reweight(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        self.ops.push(Mutation::Reweight { u, v, w });
        self
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What applying a batch actually changed (feeds dirtiness accounting
/// in callers that repair rather than recompute).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Edges that did not exist before and do now.
    pub inserted: usize,
    /// Edges removed.
    pub deleted: usize,
    /// Existing edges whose weight changed.
    pub reweighted: usize,
    /// Deletes addressing edges that were not present (no-ops).
    pub missing_deletes: usize,
}

/// A mutable adjacency-map view of a graph with an explicit
/// [`MutableGraph::rebuild`] step back to CSR.
///
/// Both directions of every edge are indexed, so neighbor scans are
/// O(degree) — this is what lets the serving layer's repair kernels
/// run directly against the mutable graph (via
/// [`NeighborView`](crate::view::NeighborView)) without paying an
/// O(V + E) CSR repack per mutation batch.
#[derive(Clone, Debug)]
pub struct MutableGraph {
    /// Per-vertex adjacency: `adj[u][v] = w` and `adj[v][u] = w` for
    /// every undirected edge `{u, v}`.
    adj: Vec<FxHashMap<VertexId, Weight>>,
    /// Undirected edge count (each edge counted once).
    m: usize,
    weighted: bool,
}

impl MutableGraph {
    /// Unpacks `g` into mutable form.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut adj: Vec<FxHashMap<VertexId, Weight>> =
            vec![FxHashMap::default(); g.num_vertices()];
        for (u, v, w) in g.edges() {
            adj[u as usize].insert(v, w);
            adj[v as usize].insert(u, w);
        }
        MutableGraph {
            adj,
            m: g.num_edges(),
            weighted: g.is_weighted(),
        }
    }

    /// Number of vertices (fixed for the adapter's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges currently present.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Current weight of edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.adj[u as usize].get(&v).copied()
    }

    /// Iterates `(neighbor, weight)` pairs of `v`, in arbitrary
    /// (hash) order.
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.adj[v as usize].iter().map(|(&u, &w)| (u, w))
    }

    /// Validates one mutation against the fixed vertex set.
    fn check(&self, m: &Mutation) -> Result<(), String> {
        let (u, v) = m.endpoints();
        if u == v {
            return Err(format!("self-loop mutation on vertex {u}"));
        }
        let n = self.adj.len();
        if u as usize >= n || v as usize >= n {
            return Err(format!(
                "mutation touches vertex outside the graph: ({u}, {v}) with n = {n}"
            ));
        }
        Ok(())
    }

    /// Applies `batch` in order. The whole batch is validated before
    /// any of it is applied, so a rejected batch leaves the graph
    /// untouched.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<ApplyOutcome, String> {
        for m in &batch.ops {
            self.check(m)?;
        }
        let mut out = ApplyOutcome::default();
        for m in &batch.ops {
            match *m {
                Mutation::Insert { u, v, w } | Mutation::Reweight { u, v, w } => {
                    match self.adj[u as usize].insert(v, w) {
                        None => {
                            out.inserted += 1;
                            self.m += 1;
                        }
                        Some(old) if old != w => out.reweighted += 1,
                        Some(_) => {}
                    }
                    self.adj[v as usize].insert(u, w);
                }
                Mutation::Delete { u, v } => {
                    if self.adj[u as usize].remove(&v).is_some() {
                        self.adj[v as usize].remove(&u);
                        out.deleted += 1;
                        self.m -= 1;
                    } else {
                        out.missing_deletes += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Packs the current edge set back into CSR form (sorted adjacency
    /// rows, both directions of every edge, weights carried iff the
    /// source graph was weighted).
    pub fn rebuild(&self) -> CsrGraph {
        // Rows are already materialized per vertex; sort each row (hash
        // order is arbitrary, CSR wants sorted neighbors) and pack.
        let n = self.adj.len();
        let mut xadj = vec![0usize; n + 1];
        let mut adj: Vec<VertexId> = Vec::with_capacity(self.m * 2);
        let mut weights: Vec<Weight> = if self.weighted {
            Vec::with_capacity(self.m * 2)
        } else {
            Vec::new()
        };
        let mut row: Vec<(VertexId, Weight)> = Vec::new();
        for u in 0..n {
            row.clear();
            row.extend(self.adj[u].iter().map(|(&v, &w)| (v, w)));
            row.sort_unstable_by_key(|a| a.0);
            xadj[u + 1] = xadj[u] + row.len();
            adj.extend(row.iter().map(|&(v, _)| v));
            if self.weighted {
                weights.extend(row.iter().map(|&(_, w)| w));
            }
        }
        CsrGraph::from_raw(xadj, adj, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;
    use crate::weights::{assign_weights, WeightScheme};
    use crate::GraphBuilder;

    #[test]
    fn round_trip_without_mutations_is_identity() {
        let g = assign_weights(&grid2d(5, 4), WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 7);
        let m = MutableGraph::from_csr(&g);
        assert_eq!(m.rebuild(), g);
        // Unweighted graphs stay unweighted.
        let u = grid2d(3, 3);
        assert_eq!(MutableGraph::from_csr(&u).rebuild(), u);
    }

    #[test]
    fn insert_delete_reweight_apply_in_order() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        let g = b.build();
        let mut m = MutableGraph::from_csr(&g);

        let mut batch = MutationBatch::new();
        batch
            .insert(2, 3, 5.0)
            .delete(0, 1)
            .reweight(1, 2, 9.0)
            .delete(3, 4); // absent: a counted no-op
        let out = m.apply(&batch).unwrap();
        assert_eq!(
            out,
            ApplyOutcome {
                inserted: 1,
                deleted: 1,
                reweighted: 1,
                missing_deletes: 1,
            }
        );
        let g2 = m.rebuild();
        g2.validate().unwrap();
        assert!(!g2.has_edge(0, 1));
        assert_eq!(g2.edge_weight(1, 2), Some(9.0));
        assert_eq!(g2.edge_weight(2, 3), Some(5.0));
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn later_ops_win_on_the_same_edge() {
        let g = GraphBuilder::new(3).build();
        let mut m = MutableGraph::from_csr(&g);
        let mut batch = MutationBatch::new();
        batch.insert(0, 1, 1.0).insert(1, 0, 4.0).delete(0, 1);
        m.apply(&batch).unwrap();
        assert_eq!(m.num_edges(), 0);
        let mut batch = MutationBatch::new();
        batch.delete(0, 2).insert(0, 2, 3.0);
        m.apply(&batch).unwrap();
        assert_eq!(m.edge_weight(2, 0), Some(3.0));
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let g = GraphBuilder::new(3).build();
        let mut m = MutableGraph::from_csr(&g);
        let mut batch = MutationBatch::new();
        batch.insert(0, 1, 1.0).insert(0, 7, 1.0); // 7 out of range
        assert!(m.apply(&batch).is_err());
        assert_eq!(m.num_edges(), 0, "nothing from the bad batch applied");
        let mut loops = MutationBatch::new();
        loops.insert(1, 1, 1.0);
        assert!(m.apply(&loops).is_err());
    }

    #[test]
    fn rebuild_matches_builder_output() {
        // A randomized mutation stream, cross-checked against building
        // the final edge set from scratch.
        let g = assign_weights(&grid2d(6, 6), WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 3);
        let mut m = MutableGraph::from_csr(&g);
        let mut batch = MutationBatch::new();
        // Deterministic pseudo-random ops.
        let mut s = 0xABCDu64;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((s >> 33) % 36) as VertexId;
            let v = ((s >> 17) % 36) as VertexId;
            if u == v {
                continue;
            }
            match s % 3 {
                0 => batch.insert(u, v, (s % 1000) as f64 / 10.0),
                1 => batch.delete(u, v),
                _ => batch.reweight(u, v, (s % 777) as f64 / 7.0),
            };
        }
        m.apply(&batch).unwrap();
        let rebuilt = m.rebuild();
        rebuilt.validate().unwrap();
        let mut b = GraphBuilder::new(36);
        for (u, v, w) in rebuilt.edges() {
            b.add_edge(u, v, w);
        }
        assert_eq!(b.build(), rebuilt);
    }
}
