//! Edge-weight assignment schemes.
//!
//! §5.1 of the paper: "For the experiments on matching, the edges in the
//! graphs were assigned random weights. This ensured that the grid
//! structure did not play a significant role for the scalability study."
//! The schemes here cover that case plus the adversarial distributions the
//! test suite uses for failure injection (all-equal weights exercise every
//! tie-breaking path).

use crate::{CsrGraph, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How to assign weights to the edges of a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightScheme {
    /// Uniform random weights in `(lo, hi)`.
    Uniform { lo: Weight, hi: Weight },
    /// Random integer weights in `1..=max` (many ties — stresses the
    /// smallest-label tie-breaking rule of the matching algorithm).
    Integer { max: u64 },
    /// Every edge gets the same weight (worst case for tie-breaking).
    Equal(Weight),
    /// Weight of `{u, v}` = `deg(u) + deg(v)` (correlated, structured).
    DegreeSum,
}

/// Assigns weights per `scheme` deterministically from `seed`.
///
/// The weight of an edge depends only on its endpoints and the seed, never
/// on iteration order, so distributed and sequential constructions of the
/// same graph agree on every weight.
pub fn assign_weights(g: &CsrGraph, scheme: WeightScheme, seed: u64) -> CsrGraph {
    match scheme {
        WeightScheme::Uniform { lo, hi } => g.with_weights(|u, v| {
            let r = edge_unit_random(u, v, seed);
            lo + (hi - lo) * r
        }),
        WeightScheme::Integer { max } => g.with_weights(|u, v| {
            let r = edge_unit_random(u, v, seed);
            1.0 + (r * max as Weight).floor().min(max as Weight - 1.0)
        }),
        WeightScheme::Equal(w) => g.with_weights(|_, _| w),
        WeightScheme::DegreeSum => g.with_weights(|u, v| (g.degree(u) + g.degree(v)) as Weight),
    }
}

/// A deterministic pseudo-random value in `[0, 1)` for edge `{u, v}`
/// (`u < v` canonical orientation). Public so distributed constructions
/// can reproduce exactly the weights of [`assign_weights`] without the
/// global graph.
pub fn edge_unit_random(u: VertexId, v: VertexId, seed: u64) -> Weight {
    let key = ((u as u64) << 32) | v as u64;
    let h = crate::util::splitmix64(key ^ crate::util::splitmix64(seed));
    // 53 high bits -> f64 in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience: a seeded RNG for callers that need ad-hoc randomness tied
/// to the same experiment seed.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draws `n` uniform weights (handy for tests).
pub fn uniform_weights(n: usize, seed: u64) -> Vec<Weight> {
    let mut rng = seeded_rng(seed);
    (0..n).map(|_| rng.random::<Weight>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;

    #[test]
    fn uniform_weights_in_range_and_deterministic() {
        let g = grid2d(6, 6);
        let w1 = assign_weights(&g, WeightScheme::Uniform { lo: 1.0, hi: 2.0 }, 9);
        let w2 = assign_weights(&g, WeightScheme::Uniform { lo: 1.0, hi: 2.0 }, 9);
        assert_eq!(w1, w2);
        for (_, _, w) in w1.edges() {
            assert!((1.0..2.0).contains(&w));
        }
        w1.validate().unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let g = grid2d(6, 6);
        let a = assign_weights(&g, WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 1);
        let b = assign_weights(&g, WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn integer_weights_are_integral() {
        let g = grid2d(5, 5);
        let wg = assign_weights(&g, WeightScheme::Integer { max: 10 }, 3);
        for (_, _, w) in wg.edges() {
            assert_eq!(w, w.floor());
            assert!((1.0..=10.0).contains(&w));
        }
    }

    #[test]
    fn equal_weights() {
        let g = grid2d(4, 4);
        let wg = assign_weights(&g, WeightScheme::Equal(2.5), 0);
        assert!(wg.edges().all(|(_, _, w)| w == 2.5));
    }

    #[test]
    fn degree_sum_weights() {
        let g = grid2d(3, 3);
        let wg = assign_weights(&g, WeightScheme::DegreeSum, 0);
        // Center vertex 4 has degree 4; its neighbor 1 has degree 3.
        assert_eq!(wg.edge_weight(1, 4), Some(7.0));
    }

    #[test]
    fn weights_independent_of_orientation() {
        // edge_unit_random is keyed on (min, max) via with_weights' u < v
        // convention; symmetry is verified by validate().
        let g = grid2d(8, 8);
        let wg = assign_weights(&g, WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 4);
        wg.validate().unwrap();
    }
}
