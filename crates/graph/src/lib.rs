//! # cmg-graph
//!
//! Graph data structures, synthetic generators, weight assignment, file I/O
//! and basic traversal routines used throughout the `cmg` workspace — the
//! substrate on which the distributed matching and coloring algorithms of
//! Çatalyürek et al. (IPPS 2011) are built.
//!
//! The central type is [`CsrGraph`], an undirected graph in compressed
//! sparse row form with optional per-edge weights. Graphs are constructed
//! either through [`GraphBuilder`] (arbitrary edge lists) or via the
//! deterministic generators in [`generators`] (5-point grids, circuit-like
//! graphs, RMAT, Erdős–Rényi, …) that mirror the workloads of the paper's
//! evaluation section.
//!
//! ```
//! use cmg_graph::generators::grid2d;
//!
//! let g = grid2d(4, 4);
//! assert_eq!(g.num_vertices(), 16);
//! assert_eq!(g.num_edges(), 2 * 4 * 3); // 2·k·(k−1) grid edges
//! ```

pub mod bipartite;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod io;
pub mod metis_io;
pub mod mutable;
pub mod stats;
pub mod traversal;
pub mod util;
pub mod view;
pub mod weights;

pub use bipartite::BipartiteGraph;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use mutable::{ApplyOutcome, MutableGraph, Mutation, MutationBatch};
pub use stats::GraphStats;
pub use view::NeighborView;

/// Vertex identifier. `u32` covers every graph size this workspace targets
/// (up to ~4.29 billion vertices) at half the adjacency-memory cost of
/// `u64`, following the "smaller integers" guidance for hot types.
pub type VertexId = u32;

/// Edge weight. Weights drive the matching objective; `f64` keeps quality
/// ratios (matched weight ÷ optimal weight) exact enough for Table 1.1.
pub type Weight = f64;

/// Sentinel meaning "no vertex" (used for unmatched mates, absent
/// candidates, …). Kept out of the valid id range by construction: graphs
/// refuse to grow to `u32::MAX` vertices.
pub const NO_VERTEX: VertexId = VertexId::MAX;
