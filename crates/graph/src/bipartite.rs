//! Bipartite graphs (the representation used for Table 1.1: bipartite
//! graphs of sparse matrices, rows on one side, columns on the other).

use crate::{CsrGraph, GraphBuilder, VertexId, Weight};

/// A weighted bipartite graph with `num_left` row-vertices and `num_right`
/// column-vertices. Edges are stored once, from the left side.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    num_left: usize,
    num_right: usize,
    xadj: Vec<usize>,
    adj: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl BipartiteGraph {
    /// Builds from an edge list of `(left, right, weight)` triples.
    /// Duplicate `(left, right)` pairs keep the maximum weight.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(
        num_left: usize,
        num_right: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut list: Vec<(VertexId, VertexId, Weight)> = edges.into_iter().collect();
        for &(l, r, _) in &list {
            assert!((l as usize) < num_left, "left vertex {l} out of range");
            assert!((r as usize) < num_right, "right vertex {r} out of range");
        }
        list.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        list.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 = next.2;
                true
            } else {
                false
            }
        });
        let mut xadj = vec![0usize; num_left + 1];
        for &(l, _, _) in &list {
            xadj[l as usize + 1] += 1;
        }
        for i in 0..num_left {
            xadj[i + 1] += xadj[i];
        }
        let mut adj = Vec::with_capacity(list.len());
        let mut weights = Vec::with_capacity(list.len());
        for (_, r, w) in list {
            adj.push(r);
            weights.push(w);
        }
        BipartiteGraph {
            num_left,
            num_right,
            xadj,
            adj,
            weights,
        }
    }

    /// Number of left (row) vertices.
    pub fn num_left(&self) -> usize {
        self.num_left
    }

    /// Number of right (column) vertices.
    pub fn num_right(&self) -> usize {
        self.num_right
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Right-neighbors of left vertex `l`, sorted.
    pub fn neighbors(&self, l: VertexId) -> &[VertexId] {
        &self.adj[self.xadj[l as usize]..self.xadj[l as usize + 1]]
    }

    /// Weights parallel to [`Self::neighbors`].
    pub fn neighbor_weights(&self, l: VertexId) -> &[Weight] {
        &self.weights[self.xadj[l as usize]..self.xadj[l as usize + 1]]
    }

    /// Iterates `(left, right, weight)` once per edge.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_left as VertexId).flat_map(move |l| {
            let lo = self.xadj[l as usize];
            let hi = self.xadj[l as usize + 1];
            (lo..hi).map(move |i| (l, self.adj[i], self.weights[i]))
        })
    }

    /// Converts to a general [`CsrGraph`] on `num_left + num_right`
    /// vertices, right vertices offset by `num_left`. This is the form the
    /// (general-graph) matching algorithms consume.
    pub fn to_general(&self) -> CsrGraph {
        let n = self.num_left + self.num_right;
        let mut b = GraphBuilder::with_capacity(n, self.num_edges());
        for (l, r, w) in self.edges() {
            b.add_edge(l, r + self.num_left as VertexId, w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            2,
            3,
            vec![(0, 0, 1.0), (0, 2, 4.0), (1, 1, 2.0), (1, 2, 3.0)],
        )
    }

    #[test]
    fn basic_shape() {
        let g = sample();
        assert_eq!(g.num_left(), 2);
        assert_eq!(g.num_right(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[0, 2]);
        assert_eq!(g.neighbor_weights(1), &[2.0, 3.0]);
    }

    #[test]
    fn duplicates_keep_max() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0, 1.0), (0, 0, 7.0)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbor_weights(0), &[7.0]);
    }

    #[test]
    fn to_general_offsets_right_side() {
        let g = sample().to_general();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(0, 4), Some(4.0)); // (left 0, right 2)
        assert_eq!(g.edge_weight(1, 3), Some(2.0)); // (left 1, right 1)
        g.validate().unwrap();
    }

    #[test]
    fn empty_bipartite() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.to_general().num_vertices(), 0);
    }
}
