//! Deterministic synthetic graph generators.
//!
//! These supply the paper's workloads: 5-point grid graphs for the weak and
//! strong scalability studies (§5.1: "model problems for partial
//! differential equations"), circuit-simulation-like graphs standing in for
//! the UF `G3_circuit` matrix, and the auxiliary families (Erdős–Rényi,
//! RMAT, bipartite) used for quality evaluation and testing.

use crate::{BipartiteGraph, CsrGraph, GraphBuilder, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A `rows × cols` 5-point grid graph: vertex `(i, j)` (row-major id
/// `i * cols + j`) connects to its east/west/north/south neighbors.
///
/// `|V| = rows·cols`, `|E| = rows·(cols−1) + cols·(rows−1)`.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let m = rows * cols.saturating_sub(1) + cols * rows.saturating_sub(1);
    let mut b = GraphBuilder::with_capacity(n, m);
    for i in 0..rows {
        for j in 0..cols {
            let v = (i * cols + j) as VertexId;
            if j + 1 < cols {
                b.add_edge_unweighted(v, v + 1);
            }
            if i + 1 < rows {
                b.add_edge_unweighted(v, v + cols as VertexId);
            }
        }
    }
    b.build()
}

/// A `nx × ny × nz` 7-point grid graph (3-D analogue of [`grid2d`]).
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    let n = nx * ny * nz;
    let mut b = GraphBuilder::new(n);
    let id = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as VertexId;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y, z);
                if x + 1 < nx {
                    b.add_edge_unweighted(v, id(x + 1, y, z));
                }
                if y + 1 < ny {
                    b.add_edge_unweighted(v, id(x, y + 1, z));
                }
                if z + 1 < nz {
                    b.add_edge_unweighted(v, id(x, y, z + 1));
                }
            }
        }
    }
    b.build()
}

/// Path graph on `n` vertices.
pub fn path(n: usize) -> CsrGraph {
    grid2d(1, n)
}

/// Cycle graph on `n` vertices (`n >= 3`; smaller `n` degenerates to a
/// path).
pub fn cycle(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n.saturating_sub(1) {
        b.add_edge_unweighted(v as VertexId, v as VertexId + 1);
    }
    if n >= 3 {
        b.add_edge_unweighted(n as VertexId - 1, 0);
    }
    b.build()
}

/// Star graph: vertex 0 connected to all others.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge_unweighted(0, v as VertexId);
    }
    b.build()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge_unweighted(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, m): exactly up to `m` distinct random edges (fewer if
/// duplicates/self-loops are re-drawn past the retry budget on tiny graphs).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    if n < 2 {
        return b.build();
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut seen = crate::util::FxHashSet::default();
    let mut attempts = 0usize;
    while seen.len() < target && attempts < 20 * target + 100 {
        attempts += 1;
        let u = rng.random_range(0..n) as VertexId;
        let v = rng.random_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v {
            (u as u64) << 32 | v as u64
        } else {
            (v as u64) << 32 | u as u64
        };
        if seen.insert(key) {
            b.add_edge_unweighted(u, v);
        }
    }
    b.build()
}

/// Recursive-matrix (R-MAT) graph: `2^scale` vertices, `edge_factor ·
/// 2^scale` edge samples with quadrant probabilities `(a, b, c, d)`.
/// Duplicate samples collapse, so the realized edge count is lower — the
/// usual R-MAT behavior. Produces the skewed degree distributions that
/// stress the boundary-heavy code paths.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> CsrGraph {
    let (a, b_, c, _d) = probs;
    assert!(
        a + b_ + c <= 1.0 + 1e-9,
        "R-MAT probabilities must sum to <= 1"
    );
    let n = 1usize << scale;
    let samples = edge_factor * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, samples);
    for _ in 0..samples {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < a {
                // top-left: no bits set
            } else if r < a + b_ {
                v |= 1;
            } else if r < a + b_ + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            builder.add_edge_unweighted(u as VertexId, v as VertexId);
        }
    }
    builder.build()
}

/// Circuit-simulation-like graph: a synthetic stand-in for the UF
/// `G3_circuit` matrix used in Figures 5.3/5.4 (1.57 M vertices, ~3 M
/// edges, degrees between 2 and 6, average ≈ 3.8).
///
/// Construction: a 2-D grid backbone (every vertex keeps degree ≥ 2, local
/// structure dominates, mirroring the mesh-like sparsity of discretized
/// circuits) plus a sprinkling of short-to-medium random "nets" that create
/// the irregularity, capped so no vertex exceeds degree 6.
pub fn circuit_like(n: usize, seed: u64) -> CsrGraph {
    let cols = (n as f64).sqrt().ceil() as usize;
    let cols = cols.max(1);
    let rows = n.div_ceil(cols);
    let total = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut deg = vec![0u8; total];
    let mut b = GraphBuilder::with_capacity(total, 2 * total);
    // Grid backbone.
    for i in 0..rows {
        for j in 0..cols {
            let v = i * cols + j;
            if j + 1 < cols {
                b.add_edge_unweighted(v as VertexId, (v + 1) as VertexId);
                deg[v] += 1;
                deg[v + 1] += 1;
            }
            if i + 1 < rows {
                b.add_edge_unweighted(v as VertexId, (v + cols) as VertexId);
                deg[v] += 1;
                deg[v + cols] += 1;
            }
        }
    }
    // Random nets: mostly short-range, a few long-range, degree-capped at 6.
    let extra = total / 2;
    for _ in 0..extra {
        let u = rng.random_range(0..total);
        if deg[u] >= 6 {
            continue;
        }
        let v = if rng.random::<f64>() < 0.8 {
            // Short-range net within a local window.
            let span = (cols / 8).max(2);
            let off = rng.random_range(0..2 * span) as i64 - span as i64;
            let cand = u as i64 + off;
            if cand < 0 || cand as usize >= total {
                continue;
            }
            cand as usize
        } else {
            rng.random_range(0..total)
        };
        if v == u || deg[v] >= 6 {
            continue;
        }
        b.add_edge_unweighted(u as VertexId, v as VertexId);
        deg[u] += 1;
        deg[v] += 1;
    }
    b.build()
}

/// Random bipartite graph: `num_left × num_right`, `m` random edges with
/// uniform-random weights in `(0, 1)`. Every left vertex receives at least
/// one incident edge (so perfect-side matchings exist on square instances
/// with enough edges), mimicking the structural nonzero patterns of the
/// Table 1.1 matrices.
pub fn random_bipartite(num_left: usize, num_right: usize, m: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m + num_left);
    if num_right > 0 {
        // Guarantee coverage of the left side (a matrix has no empty rows).
        for l in 0..num_left {
            let r = rng.random_range(0..num_right) as VertexId;
            edges.push((l as VertexId, r, rng.random::<Weight>()));
        }
        for _ in 0..m.saturating_sub(num_left) {
            let l = rng.random_range(0..num_left.max(1)) as VertexId;
            let r = rng.random_range(0..num_right) as VertexId;
            edges.push((l, r, rng.random::<Weight>()));
        }
    }
    BipartiteGraph::from_edges(num_left, num_right, edges)
}

/// Banded bipartite graph: left vertex `l` connects to right vertices in a
/// band around `l` (plus wraparound), like the banded sparsity of
/// structural-mechanics matrices (`ldoor`, `audikw_1` in Table 1.1).
pub fn banded_bipartite(n: usize, band: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * band);
    for l in 0..n {
        for k in 0..band {
            let r = (l + k) % n.max(1);
            edges.push((l as VertexId, r as VertexId, rng.random::<Weight>()));
        }
    }
    BipartiteGraph::from_edges(n, n, edges)
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// between every pair closer than `radius`. The model behind the paper's
/// wireless frequency-assignment application of coloring (§1, ref \[15\]).
///
/// Returns the graph and the point coordinates scaled to `0..=u16::MAX`
/// (ready for [`Morton partitioning`](https://en.wikipedia.org/wiki/Z-order_curve)).
/// Uses a uniform grid of cell size `radius` so construction is
/// `O(n + m)` expected.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> (CsrGraph, Vec<(u32, u32)>) {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    // Bucket points into cells of side `radius`.
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let mut b = GraphBuilder::new(n);
    let r2 = radius * radius;
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in cy.saturating_sub(1)..(cy + 2).min(cells) {
            for dx in cx.saturating_sub(1)..(cx + 2).min(cells) {
                for &j in &buckets[dy * cells + dx] {
                    if (j as usize) > i {
                        let (px, py) = points[j as usize];
                        let (ddx, ddy) = (px - x, py - y);
                        if ddx * ddx + ddy * ddy <= r2 {
                            b.add_edge_unweighted(i as VertexId, j);
                        }
                    }
                }
            }
        }
    }
    let coords = points
        .iter()
        .map(|&(x, y)| ((x * u16::MAX as f64) as u32, (y * u16::MAX as f64) as u32))
        .collect();
    (b.build(), coords)
}

/// Diagonally-dominant square bipartite graph: every diagonal entry
/// `(l, l)` carries weight in `(dominance, dominance + 1)`, plus
/// `extra_per_row` random off-diagonal entries with weight in `(0, 1)`.
///
/// This is the weight structure of the Table 1.1 matrices (circuit and FEM
/// matrices are (nearly) diagonally dominant): the optimal matching is
/// (near-)diagonal, and the locally-dominant ½-approximation recovers it
/// almost exactly — the mechanism behind the paper's ≥ 99 % quality
/// ratios.
pub fn diag_dominant_bipartite(
    n: usize,
    extra_per_row: usize,
    dominance: Weight,
    seed: u64,
) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * (1 + extra_per_row));
    for l in 0..n {
        edges.push((
            l as VertexId,
            l as VertexId,
            dominance + rng.random::<Weight>(),
        ));
        for _ in 0..extra_per_row {
            let r = rng.random_range(0..n.max(1)) as VertexId;
            edges.push((l as VertexId, r, rng.random::<Weight>()));
        }
    }
    BipartiteGraph::from_edges(n, n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_counts() {
        let g = grid2d(3, 5);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 3 * 4 + 5 * 2);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn grid2d_degenerate() {
        assert_eq!(grid2d(1, 1).num_edges(), 0);
        assert_eq!(grid2d(0, 0).num_vertices(), 0);
        let p = grid2d(1, 4);
        assert_eq!(p.num_edges(), 3);
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.num_vertices(), 27);
        // edges: 3 directions × (3-1)·3·3
        assert_eq!(g.num_edges(), 3 * 18);
        assert_eq!(g.max_degree(), 6); // the center vertex
        g.validate().unwrap();
    }

    #[test]
    fn cycle_and_star_and_complete() {
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(5).max_degree(), 2);
        assert_eq!(star(6).num_edges(), 5);
        assert_eq!(star(6).max_degree(), 5);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(complete(5).min_degree(), 4);
    }

    #[test]
    fn erdos_renyi_deterministic_and_bounded() {
        let g1 = erdos_renyi(100, 300, 42);
        let g2 = erdos_renyi(100, 300, 42);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_edges(), 300);
        assert_ne!(g1, erdos_renyi(100, 300, 43));
        g1.validate().unwrap();
    }

    #[test]
    fn erdos_renyi_caps_at_complete() {
        let g = erdos_renyi(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn rmat_basic() {
        let g = rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 7);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 256, "rmat too sparse: {}", g.num_edges());
        g.validate().unwrap();
        // Skew: max degree well above average.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 2.0 * avg);
    }

    #[test]
    fn circuit_like_matches_published_stats() {
        let g = circuit_like(10_000, 3);
        assert!(g.num_vertices() >= 10_000);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() <= 6, "max degree {}", g.max_degree());
        assert!(g.min_degree() >= 2, "min degree {}", g.min_degree());
        assert!((3.0..5.0).contains(&avg), "avg degree {avg}");
        g.validate().unwrap();
    }

    #[test]
    fn random_geometric_respects_radius() {
        let (g, coords) = random_geometric(300, 0.1, 4);
        assert_eq!(g.num_vertices(), 300);
        assert_eq!(coords.len(), 300);
        g.validate().unwrap();
        // Every edge joins points within the radius (check via coords).
        let to_unit = |c: u32| c as f64 / u16::MAX as f64;
        for (u, v, _) in g.edges() {
            let (x1, y1) = coords[u as usize];
            let (x2, y2) = coords[v as usize];
            let dx = to_unit(x1) - to_unit(x2);
            let dy = to_unit(y1) - to_unit(y2);
            assert!(dx * dx + dy * dy <= 0.1 * 0.1 + 1e-6);
        }
        // Expected degree ≈ n·π·r² ≈ 9.4; allow a broad band.
        let avg = 2.0 * g.num_edges() as f64 / 300.0;
        assert!((4.0..16.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn random_geometric_is_deterministic() {
        let (g1, _) = random_geometric(100, 0.15, 7);
        let (g2, _) = random_geometric(100, 0.15, 7);
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_bipartite_covers_left() {
        let g = random_bipartite(50, 50, 200, 5);
        for l in 0..50 {
            assert!(!g.neighbors(l).is_empty(), "left vertex {l} uncovered");
        }
        assert!(g.num_edges() <= 250);
    }

    #[test]
    fn banded_bipartite_shape() {
        let g = banded_bipartite(10, 3, 1);
        assert_eq!(g.num_edges(), 30);
        assert_eq!(g.neighbors(9), &[0, 1, 9]); // wraparound band, sorted
    }
}
