//! Breadth-first search and connected components (used by the partitioner's
//! graph-growing phase and by test invariants).

use crate::{CsrGraph, VertexId, NO_VERTEX};
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS visit order from `source` (only the reachable component).
pub fn bfs_order(g: &CsrGraph, source: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Connected-component labeling: returns `(labels, component_count)` with
/// labels in `0..count`, numbered by the smallest contained vertex.
pub fn connected_components(g: &CsrGraph) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    let mut label = vec![NO_VERTEX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        if label[s as usize] != NO_VERTEX {
            continue;
        }
        label[s as usize] = count as VertexId;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == NO_VERTEX {
                    label[v as usize] = count as VertexId;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// A pseudo-peripheral vertex: repeatedly BFS from the farthest vertex
/// found, until the eccentricity stops growing. Standard seed choice for
/// graph-growing partitioners.
pub fn pseudo_peripheral(g: &CsrGraph, start: VertexId) -> VertexId {
    let mut current = start;
    let mut best_ecc = 0usize;
    for _ in 0..8 {
        let dist = bfs_distances(g, current);
        let (far, ecc) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != usize::MAX)
            .max_by_key(|&(_, &d)| d)
            .map(|(v, &d)| (v as VertexId, d))
            .unwrap_or((current, 0));
        if ecc <= best_ecc {
            break;
        }
        best_ecc = ecc;
        current = far;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, path};
    use crate::GraphBuilder;

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = GraphBuilder::new(3).build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, usize::MAX, usize::MAX]);
    }

    #[test]
    fn bfs_order_visits_component_once() {
        let g = grid2d(3, 3);
        let order = bfs_order(&g, 4);
        assert_eq!(order.len(), 9);
        assert_eq!(order[0], 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(6);
        b.add_edge_unweighted(0, 1);
        b.add_edge_unweighted(2, 3);
        // 4, 5 isolated
        let g = b.build();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn grid_is_connected() {
        let (_, count) = connected_components(&grid2d(10, 10));
        assert_eq!(count, 1);
    }

    #[test]
    fn pseudo_peripheral_on_path_hits_an_end() {
        let g = path(9);
        let p = pseudo_peripheral(&g, 4);
        assert!(p == 0 || p == 8, "got {p}");
    }
}
