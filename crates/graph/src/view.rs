//! [`NeighborView`]: the adjacency interface repair kernels see.
//!
//! The warm-start invalidation and frontier-repair kernels
//! (cmg-matching, cmg-coloring) only ever ask three questions of a
//! graph — how many vertices, is `{u, v}` an edge and at what weight,
//! and who neighbors `v`. Abstracting those behind a trait lets the
//! kernels run against either representation:
//!
//! * [`CsrGraph`] — the packed form every batch algorithm uses;
//! * [`MutableGraph`] — the serving layer's resident edge map, which
//!   absorbs mutation batches in O(batch) *without* repacking.
//!
//! That second impl is the point: a resident service repairing a tiny
//! frontier must not pay an O(V + E) CSR rebuild per batch just to
//! hand the kernels an adjacency. See `DESIGN.md` §13.
//!
//! Neighbor iteration is exposed callback-style (`for_each_neighbor`)
//! rather than as an iterator associated type: both impls stay simple,
//! the trait stays object-safe, and the kernels' loops don't care.
//! Iteration order is implementation-defined ([`CsrGraph`] yields
//! sorted neighbors, [`MutableGraph`] hash order) — kernels must not
//! depend on it for their results.

use crate::{CsrGraph, MutableGraph, VertexId, Weight};

/// Read-only adjacency, weight `1.0` when the graph is unweighted.
pub trait NeighborView {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Weight of edge `{u, v}`, or `None` if absent.
    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight>;

    /// `true` iff `{u, v}` is an edge.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Calls `f(neighbor, weight)` for every neighbor of `v`, in
    /// implementation-defined order.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight));
}

impl NeighborView for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        CsrGraph::edge_weight(self, u, v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight)) {
        for (u, w) in self.neighbors_weighted(v) {
            f(u, w);
        }
    }
}

impl NeighborView for MutableGraph {
    fn num_vertices(&self) -> usize {
        MutableGraph::num_vertices(self)
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        MutableGraph::edge_weight(self, u, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight)) {
        for (u, w) in self.neighbors_weighted(v) {
            f(u, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;
    use crate::weights::{assign_weights, WeightScheme};

    /// Both impls answer identically on the same graph (up to neighbor
    /// order), including the unweighted 1.0 convention.
    #[test]
    fn csr_and_mutable_views_agree() {
        for g in [
            grid2d(6, 5),
            assign_weights(&grid2d(6, 5), WeightScheme::Uniform { lo: 0.1, hi: 1.0 }, 3),
        ] {
            let m = MutableGraph::from_csr(&g);
            assert_eq!(
                NeighborView::num_vertices(&g),
                NeighborView::num_vertices(&m)
            );
            for v in 0..g.num_vertices() as VertexId {
                let mut a: Vec<(VertexId, Weight)> = Vec::new();
                NeighborView::for_each_neighbor(&g, v, &mut |u, w| a.push((u, w)));
                let mut b: Vec<(VertexId, Weight)> = Vec::new();
                NeighborView::for_each_neighbor(&m, v, &mut |u, w| b.push((u, w)));
                b.sort_by_key(|x| x.0);
                assert_eq!(a, b, "neighborhood of {v}");
                for &(u, w) in &a {
                    assert_eq!(NeighborView::edge_weight(&m, v, u), Some(w));
                    assert!(NeighborView::has_edge(&m, u, v));
                }
            }
            assert!(!NeighborView::has_edge(&m, 0, 29));
        }
    }
}
