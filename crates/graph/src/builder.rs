//! Edge-list accumulator that produces a canonical [`CsrGraph`].

use crate::{CsrGraph, VertexId, Weight, NO_VERTEX};

/// Accumulates undirected edges and builds a [`CsrGraph`].
///
/// The builder is forgiving: edges may be added in any order and in either
/// orientation, duplicates collapse (keeping the *maximum* weight, which is
/// the natural choice for matching inputs), and self-loops are dropped.
///
/// ```
/// use cmg_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(2, 0, 1.5);
/// b.add_edge(0, 2, 2.5); // duplicate: max weight wins
/// b.add_edge(1, 1, 9.0); // self-loop: ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.edge_weight(0, 2), Some(2.5));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Canonicalized (min, max, w) triples.
    edges: Vec<(VertexId, VertexId, Weight)>,
    weighted: bool,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    ///
    /// # Panics
    /// Panics if `n` leaves no room for the [`NO_VERTEX`] sentinel.
    pub fn new(n: usize) -> Self {
        assert!(n < NO_VERTEX as usize, "too many vertices");
        GraphBuilder {
            n,
            edges: Vec::new(),
            weighted: false,
        }
    }

    /// A builder with pre-reserved capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the weighted undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "vertex out of range"
        );
        if u == v {
            return;
        }
        self.weighted = true;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Adds an unweighted undirected edge (weight `1.0` if the graph ends up
    /// weighted because other edges carry weights).
    pub fn add_edge_unweighted(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "vertex out of range"
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, 1.0));
    }

    /// Number of edges currently buffered (duplicates not yet collapsed).
    pub fn num_buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the canonical CSR graph: sorted adjacency, duplicates
    /// collapsed to max weight, no self-loops.
    pub fn build(mut self) -> CsrGraph {
        // Canonical order, then collapse duplicates keeping max weight.
        self.edges
            .sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                // `next` has the >= weight thanks to the sort above; keep it.
                kept.2 = next.2;
                true
            } else {
                false
            }
        });

        let n = self.n;
        let mut xadj = vec![0usize; n + 1];
        for &(u, v, _) in &self.edges {
            xadj[u as usize + 1] += 1;
            xadj[v as usize + 1] += 1;
        }
        for i in 0..n {
            xadj[i + 1] += xadj[i];
        }
        let mut adj = vec![0 as VertexId; self.edges.len() * 2];
        let mut weights = if self.weighted {
            vec![0.0; self.edges.len() * 2]
        } else {
            Vec::new()
        };
        let mut cursor = xadj.clone();
        for &(u, v, w) in &self.edges {
            let iu = cursor[u as usize];
            adj[iu] = v;
            cursor[u as usize] += 1;
            let iv = cursor[v as usize];
            adj[iv] = u;
            cursor[v as usize] += 1;
            if self.weighted {
                weights[iu] = w;
                weights[iv] = w;
            }
        }
        // Each row was filled in ascending (u, v) edge order; rows of the
        // lower endpoint get neighbors in mixed order, so sort per row.
        for v in 0..n {
            let lo = xadj[v];
            let hi = xadj[v + 1];
            if self.weighted {
                let mut row: Vec<(VertexId, Weight)> = adj[lo..hi]
                    .iter()
                    .copied()
                    .zip(weights[lo..hi].iter().copied())
                    .collect();
                row.sort_unstable_by_key(|&(nbr, _)| nbr);
                for (i, (nbr, w)) in row.into_iter().enumerate() {
                    adj[lo + i] = nbr;
                    weights[lo + i] = w;
                }
            } else {
                adj[lo..hi].sort_unstable();
            }
        }
        CsrGraph::from_raw(xadj, adj, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 0, 1.0);
        b.add_edge(0, 1, 5.0);
        b.add_edge(0, 1, 3.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(5.0));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn unweighted_when_only_unweighted_edges_added() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_unweighted(0, 1);
        b.add_edge_unweighted(1, 2);
        let g = b.build();
        assert!(!g.is_weighted());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn adjacency_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::new(5);
        for &v in &[4, 2, 3, 1] {
            b.add_edge(0, v, v as Weight);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.neighbor_weights(0), &[1.0, 2.0, 3.0, 4.0]);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_vertex_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1.0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}
