//! METIS graph file format (the format the paper's partitioning tools
//! consume): 1-based adjacency lists, optional edge weights.
//!
//! Format reference: first line `n m [fmt]` where `fmt` is `1` when edge
//! weights are present (`001`); line `i` then lists the neighbors of
//! vertex `i` (1-based), each followed by its weight when weighted.
//! Comment lines start with `%`.

use crate::io::IoError;
use crate::{CsrGraph, GraphBuilder, VertexId, Weight};
use std::io::{BufRead, BufReader, Read, Write};

fn parse_err(msg: impl Into<String>) -> IoError {
    IoError::Parse(msg.into())
}

/// Reads a METIS graph file.
pub fn read_metis(reader: impl Read) -> Result<CsrGraph, IoError> {
    // Blank lines are meaningful (isolated vertices); only comments are
    // skipped. The header is the first non-comment, non-blank line.
    let mut lines = BufReader::new(reader)
        .lines()
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .filter(|l| !l.trim_start().starts_with('%'));
    let header = loop {
        match lines.next() {
            Some(l) if l.trim().is_empty() => continue,
            Some(l) => break l,
            None => return Err(parse_err("empty file")),
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 {
        return Err(parse_err(format!("bad header: {header}")));
    }
    let n: usize = fields[0]
        .parse()
        .map_err(|_| parse_err(format!("bad vertex count: {}", fields[0])))?;
    let m: usize = fields[1]
        .parse()
        .map_err(|_| parse_err(format!("bad edge count: {}", fields[1])))?;
    let fmt = fields.get(2).copied().unwrap_or("0");
    let weighted = fmt.ends_with('1');
    if fmt.len() > 3
        || fmt.chars().any(|c| c != '0' && c != '1')
        || fmt.starts_with("1") && fmt.len() == 3
    {
        // Vertex weights/sizes (fmt 10x/1xx) are not supported here.
        if fmt != "1" && fmt != "001" && fmt != "0" && fmt != "000" {
            return Err(parse_err(format!("unsupported fmt field: {fmt}")));
        }
    }

    let mut b = GraphBuilder::with_capacity(n, m);
    let mut row = 0 as VertexId;
    for line in lines {
        if row as usize >= n {
            return Err(parse_err("more adjacency lines than vertices"));
        }
        let mut toks = line.split_whitespace();
        while let Some(t) = toks.next() {
            let u: usize = t
                .parse()
                .map_err(|_| parse_err(format!("bad neighbor: {t}")))?;
            if u == 0 || u > n {
                return Err(parse_err(format!("neighbor {u} out of range")));
            }
            let w: Weight = if weighted {
                let wt = toks
                    .next()
                    .ok_or_else(|| parse_err("missing edge weight"))?;
                wt.parse()
                    .map_err(|_| parse_err(format!("bad weight: {wt}")))?
            } else {
                1.0
            };
            let u = (u - 1) as VertexId;
            if weighted {
                b.add_edge(row, u, w);
            } else {
                b.add_edge_unweighted(row, u);
            }
        }
        row += 1;
    }
    if (row as usize) != n {
        return Err(parse_err(format!(
            "expected {n} adjacency lines, found {row}"
        )));
    }
    let g = b.build();
    if g.num_edges() != m {
        return Err(parse_err(format!(
            "header claims {m} edges, file contains {}",
            g.num_edges()
        )));
    }
    Ok(g)
}

/// Writes a graph in METIS format (with edge weights if present).
pub fn write_metis(g: &CsrGraph, mut w: impl Write) -> Result<(), IoError> {
    let weighted = g.is_weighted();
    writeln!(
        w,
        "{} {}{}",
        g.num_vertices(),
        g.num_edges(),
        if weighted { " 001" } else { "" }
    )?;
    for v in 0..g.num_vertices() as VertexId {
        let mut first = true;
        for (u, wt) in g.neighbors_weighted(v) {
            if !first {
                write!(w, " ")?;
            }
            first = false;
            if weighted {
                write!(w, "{} {}", u + 1, wt)?;
            } else {
                write!(w, "{}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;
    use crate::weights::{assign_weights, WeightScheme};

    const SAMPLE: &str = "% a comment\n4 3\n2 3\n1\n1 4\n3\n";

    #[test]
    fn reads_unweighted_sample() {
        let g = read_metis(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(2, 3));
        g.validate().unwrap();
    }

    #[test]
    fn round_trip_unweighted() {
        let g = grid2d(5, 7);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        assert_eq!(read_metis(&buf[..]).unwrap(), g);
    }

    #[test]
    fn round_trip_weighted() {
        let g = assign_weights(&grid2d(4, 4), WeightScheme::Integer { max: 9 }, 2);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(&buf[..]).unwrap();
        assert_eq!(g2, g);
        assert!(g2.is_weighted());
    }

    #[test]
    fn rejects_inconsistencies() {
        // neighbor out of range
        assert!(read_metis("2 1\n3\n\n".as_bytes()).is_err());
        // edge count mismatch
        assert!(read_metis("3 5\n2\n1 3\n2\n".as_bytes()).is_err());
        // too many rows
        assert!(read_metis("1 0\n\n2\n".as_bytes()).is_err());
        // empty file
        assert!(read_metis("".as_bytes()).is_err());
    }

    #[test]
    fn isolated_vertices_are_blank_lines() {
        let g = read_metis("3 1\n2\n1\n\n".as_bytes()).unwrap();
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.num_edges(), 1);
    }
}
