//! Circuit-simulation pipeline: the paper's motivating use case (§1).
//!
//! A sparse circuit matrix is processed end-to-end: its bipartite graph is
//! matched (maximizing "diagonal dominance" — the weight on the matched
//! diagonal, as in sparse direct solvers), and its adjacency graph is
//! colored (as for Jacobian compression), both distributed over many
//! ranks.
//!
//! Run with: `cargo run --release --example circuit_pipeline`

use cmg::prelude::*;
use cmg_coloring::seq as seq_coloring;
use cmg_graph::generators::{circuit_like, diag_dominant_bipartite};
use cmg_matching::{exact, seq as seq_matching};
use cmg_partition::simple::block_partition;

fn main() {
    // --- Matching side: permute heavy entries to the diagonal. ---------
    let matrix = diag_dominant_bipartite(4_000, 2, 1.5, 7);
    let g = matrix.to_general();
    println!("bipartite matrix graph: {}", GraphStats::of(&g));

    // Distributed ½-approximation …
    let part = multilevel_partition(&g, 32, 3);
    let engine = Engine::default_simulated();
    let run = cmg::run_matching(&g, &part, &engine);
    run.matching.validate(&g).expect("invalid matching");
    let approx_w = run.matching.weight(&g);

    // … against the exact optimum and the sequential algorithms.
    let optimum = exact::max_weight_bipartite(&matrix);
    let seq_w = seq_matching::local_dominant(&g).weight(&g);
    println!(
        "matching weight: distributed {:.2} | sequential {:.2} | optimal {:.2} ({:.2}% of optimal)",
        approx_w,
        seq_w,
        optimum.weight,
        100.0 * approx_w / optimum.weight
    );
    assert!((approx_w - seq_w).abs() < 1e-9, "distributed == sequential");

    // --- Coloring side: compress the Jacobian's adjacency graph. -------
    let adj = circuit_like(25_000, 9);
    println!("\nadjacency graph: {}", GraphStats::of(&adj));
    let part = block_partition(adj.num_vertices(), 32);
    println!("partition: {}", part.quality(&adj));

    let run = cmg::run_coloring(&adj, &part, ColoringConfig::default(), &engine);
    run.coloring.validate(&adj).expect("invalid coloring");
    let serial = seq_coloring::greedy(&adj, seq_coloring::Ordering::Natural);
    let lower = seq_coloring::clique_lower_bound(&adj, 8);
    println!(
        "colors: distributed {} | serial greedy {} | clique lower bound {}",
        run.coloring.num_colors(),
        serial.num_colors(),
        lower
    );
    println!(
        "phases {} | simulated time {:.1} µs | {} messages",
        run.phases,
        run.simulated_time * 1e6,
        run.stats.total_messages()
    );
}
