//! Matrix Market round trip: write a graph out, read it back in both of
//! the paper's representations (bipartite for matching, adjacency for
//! coloring) and process each. Drop a real UF matrix (e.g. `G3_circuit`)
//! at the given path to run the pipeline on it.
//!
//! Run with: `cargo run --release --example matrix_io [path/to/matrix.mtx]`

use cmg::prelude::*;
use cmg_graph::generators::grid2d;
use cmg_graph::io;
use cmg_graph::weights::{assign_weights, WeightScheme};
use cmg_matching::seq;
use cmg_partition::simple::bfs_partition;

fn main() {
    let mtx_bytes: Vec<u8> = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            std::fs::read(path).expect("cannot read matrix file")
        }
        None => {
            // No file given: synthesize one in-memory so the example is
            // self-contained.
            let g = assign_weights(
                &grid2d(40, 40),
                WeightScheme::Uniform { lo: 0.1, hi: 1.0 },
                5,
            );
            let mut buf = Vec::new();
            io::write_matrix_market(&g, &mut buf).expect("write failed");
            println!("no file given; generated a 40x40 grid matrix in memory");
            buf
        }
    };

    let matrix = io::read_matrix_market(&mtx_bytes[..]).expect("parse failed");
    println!(
        "matrix: {} x {}, {} entries (symmetric: {})",
        matrix.rows,
        matrix.cols,
        matrix.entries.len(),
        matrix.symmetric
    );

    // Bipartite representation → matching (Table 1.1's pipeline).
    let bip = matrix.to_bipartite();
    let general = bip.to_general();
    let m = seq::local_dominant(&general);
    m.validate(&general).expect("invalid matching");
    println!(
        "bipartite matching: {} edges, weight {:.3}",
        m.cardinality(),
        m.weight(&general)
    );

    // Adjacency representation → distributed coloring (Fig 5.4's
    // pipeline), if square.
    if matrix.rows == matrix.cols {
        let adj = matrix.to_adjacency();
        let part = bfs_partition(&adj, 8);
        let run = cmg::run_coloring(
            &adj,
            &part,
            ColoringConfig::default(),
            &Engine::default_simulated(),
        );
        run.coloring.validate(&adj).expect("invalid coloring");
        println!(
            "adjacency coloring: {} colors in {} phases over 8 ranks",
            run.coloring.num_colors(),
            run.phases
        );
    }
}
