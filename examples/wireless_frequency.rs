//! Wireless frequency assignment — the paper's §1 coloring application
//! (ref [15]: "frequency assignment in wireless networks").
//!
//! Transmitters are random points in the plane; two transmitters within
//! interference range must not share a frequency (distance-1 coloring of
//! the random geometric graph), and with one-hop relaying they must
//! differ even two hops apart (distance-2 coloring). The network is
//! partitioned geographically with the Morton space-filling curve and
//! colored distributedly.
//!
//! Run with: `cargo run --release --example wireless_frequency`

use cmg::prelude::*;
use cmg_coloring::dist2::{assemble_d2, DistColoring2};
use cmg_coloring::distance2::validate_d2;
use cmg_graph::generators::random_geometric;
use cmg_partition::geometric::morton_partition;
use cmg_runtime::{EngineConfig, SimEngine};

fn main() {
    // 3,000 transmitters, interference radius 3% of the field.
    let (network, coords) = random_geometric(3_000, 0.03, 7);
    println!("network: {}", GraphStats::of(&network));

    // Geographic distribution over 25 base-station controllers.
    let partition = morton_partition(&coords, 25);
    println!("distribution: {}", partition.quality(&network));

    // Distance-1 frequencies: adjacent transmitters differ.
    let engine = Engine::default_simulated();
    let d1 = cmg::run_coloring(&network, &partition, ColoringConfig::default(), &engine);
    d1.coloring
        .validate(&network)
        .expect("invalid d1 assignment");
    println!(
        "distance-1: {} frequencies in {} phases ({} messages, {:.1} µs simulated)",
        d1.coloring.num_colors(),
        d1.phases,
        d1.stats.total_messages(),
        d1.simulated_time * 1e6
    );

    // Distance-2 frequencies: hidden-terminal-safe assignment.
    let parts = DistGraph::build_all(&network, &partition);
    let programs: Vec<DistColoring2> = parts
        .into_iter()
        .map(|dg| DistColoring2::new(dg, 200, 11))
        .collect();
    let result = SimEngine::new(programs, EngineConfig::default()).run();
    assert!(!result.hit_round_cap, "d2 did not converge");
    let d2 = assemble_d2(&result.programs, network.num_vertices());
    validate_d2(&d2, &network).expect("invalid d2 assignment");
    println!(
        "distance-2: {} frequencies ({} messages, {:.1} µs simulated)",
        d2.num_colors(),
        result.stats.total_messages(),
        result.stats.makespan() * 1e6
    );

    // Sanity: d2 needs at least as many frequencies as d1.
    assert!(d2.num_colors() >= d1.coloring.num_colors());
}
