//! Quickstart: build a graph, partition it, and run the distributed
//! matching and coloring algorithms on the simulation engine.
//!
//! Run with: `cargo run --release --example quickstart`

use cmg::prelude::*;
use cmg_graph::generators::grid2d;
use cmg_graph::weights::{assign_weights, WeightScheme};
use cmg_partition::simple::grid2d_partition;

fn main() {
    // A 64×64 five-point grid with uniform random edge weights — the
    // paper's model problem.
    let grid = grid2d(64, 64);
    let weighted = assign_weights(&grid, WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 42);
    println!("input: {}", GraphStats::of(&weighted));

    // Distribute it over 16 ranks as a 4×4 processor grid.
    let partition = grid2d_partition(64, 64, 4, 4);
    println!("partition: {}", partition.quality(&weighted));

    // Distributed ½-approximation matching (simulated Blue Gene/P).
    let engine = Engine::default_simulated();
    let m = cmg::run_matching(&weighted, &partition, &engine);
    m.matching.validate(&weighted).expect("invalid matching");
    println!(
        "matching : {} edges, weight {:.2}, simulated time {:.1} µs, {} messages",
        m.matching.cardinality(),
        m.matching.weight(&weighted),
        m.simulated_time * 1e6,
        m.stats.total_messages(),
    );

    // Distributed speculative distance-1 coloring.
    let c = cmg::run_coloring(&grid, &partition, ColoringConfig::default(), &engine);
    c.coloring.validate(&grid).expect("invalid coloring");
    println!(
        "coloring : {} colors in {} phases, simulated time {:.1} µs, {} messages",
        c.coloring.num_colors(),
        c.phases,
        c.simulated_time * 1e6,
        c.stats.total_messages(),
    );

    // The same algorithms also run on real threads (one per rank):
    let mt = cmg::run_matching(&weighted, &partition, &Engine::default_threaded());
    assert_eq!(mt.matching, m.matching, "engines agree on the result");
    println!(
        "threaded : same matching, wall time {:.2?}",
        mt.wall_time.unwrap()
    );
}
