//! A miniature scalability study: how to use the simulation engine to
//! explore rank counts far beyond the host's cores, the way the paper's
//! Figures 5.1–5.4 are produced.
//!
//! Run with: `cargo run --release --example scaling_study`

use cmg::prelude::*;
use cmg_graph::generators::grid2d;
use cmg_graph::weights::{assign_weights, WeightScheme};
use cmg_partition::simple::{grid2d_partition, square_processor_grid};

fn main() {
    const K: usize = 512;
    let grid = grid2d(K, K);
    let weighted = assign_weights(&grid, WeightScheme::Uniform { lo: 0.0, hi: 1.0 }, 3);
    println!("strong scaling of matching on a {K}x{K} grid (simulated Blue Gene/P)\n");
    println!(
        "{:>6} {:>14} {:>12} {:>10} {:>9}",
        "ranks", "sim time", "speedup", "packets", "rounds"
    );

    let mut base = None;
    for p in [1u32, 4, 16, 64, 256, 1024] {
        let (pr, pc) = square_processor_grid(p);
        let part = grid2d_partition(K, K, pr, pc);
        let run = cmg::run_matching(&weighted, &part, &Engine::default_simulated());
        run.matching.validate(&weighted).expect("invalid matching");
        let t = run.simulated_time;
        let speedup = *base.get_or_insert(t) / t;
        println!(
            "{:>6} {:>11.1} µs {:>11.1}x {:>10} {:>9}",
            p,
            t * 1e6,
            speedup,
            run.stats.total_packets(),
            run.stats.rounds
        );
    }

    println!("\nsame study under a commodity-cluster cost model:\n");
    let engine = Engine::Simulated(EngineConfig::with_preset(MachinePreset::CommodityCluster));
    for p in [1u32, 16, 256] {
        let (pr, pc) = square_processor_grid(p);
        let part = grid2d_partition(K, K, pr, pc);
        let run = cmg::run_matching(&weighted, &part, &engine);
        println!("{:>6} ranks: {:>9.1} µs", p, run.simulated_time * 1e6);
    }
}
